//! Property-based tests for the neural network substrate, driven by a
//! seeded generator loop (the build has no crates.io access, so no
//! proptest; each case count is high enough to exercise the input space).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use seo_nn::layer::Activation;
use seo_nn::mlp::Mlp;
use seo_nn::policy::{DrivingPolicy, PolicyFeatures};
use seo_nn::tensor::{dot, Matrix};

const CASES: usize = 200;

fn small_vec(rng: &mut StdRng, len: usize) -> Vec<f64> {
    (0..len).map(|_| rng.gen_range(-3.0..3.0)).collect()
}

#[test]
fn matvec_is_linear() {
    let mut rng = StdRng::seed_from_u64(0xA11CE);
    let m = Matrix::from_flat(3, 6, (0..18).map(|i| (i as f64) * 0.1 - 0.9).collect());
    for _ in 0..CASES {
        let a = small_vec(&mut rng, 6);
        let b = small_vec(&mut rng, 6);
        let alpha = rng.gen_range(-2.0..2.0);
        // M(alpha a + b) == alpha M a + M b for a fixed matrix.
        let combined: Vec<f64> = a.iter().zip(&b).map(|(x, y)| alpha * x + y).collect();
        let left = m.matvec(&combined);
        let ma = m.matvec(&a);
        let mb = m.matvec(&b);
        for i in 0..3 {
            let right = alpha * ma[i] + mb[i];
            assert!((left[i] - right).abs() < 1e-9, "{} vs {right}", left[i]);
        }
    }
}

#[test]
fn matvec_transposed_is_adjoint() {
    let mut rng = StdRng::seed_from_u64(0xAD70);
    let m = Matrix::from_flat(3, 4, (0..12).map(|i| ((i * 7) % 5) as f64 - 2.0).collect());
    for _ in 0..CASES {
        let x = small_vec(&mut rng, 4);
        let y = small_vec(&mut rng, 3);
        // <Mx, y> == <x, M^T y>.
        let lhs = dot(&m.matvec(&x), &y);
        let rhs = dot(&x, &m.matvec_transposed(&y));
        assert!((lhs - rhs).abs() < 1e-9, "adjoint mismatch {lhs} vs {rhs}");
    }
}

#[test]
fn activations_are_monotone() {
    let mut rng = StdRng::seed_from_u64(1);
    for _ in 0..CASES {
        let x = rng.gen_range(-10.0..10.0);
        let dx = rng.gen_range(0.0..5.0);
        for act in [
            Activation::Identity,
            Activation::Relu,
            Activation::Tanh,
            Activation::Sigmoid,
        ] {
            assert!(
                act.apply(x + dx) >= act.apply(x) - 1e-12,
                "{act:?} not monotone"
            );
        }
    }
}

#[test]
fn activation_derivatives_are_nonnegative() {
    let mut rng = StdRng::seed_from_u64(2);
    for _ in 0..CASES {
        let x = rng.gen_range(-10.0..10.0);
        for act in [
            Activation::Identity,
            Activation::Relu,
            Activation::Tanh,
            Activation::Sigmoid,
        ] {
            let y = act.apply(x);
            assert!(act.derivative_from_output(y) >= 0.0);
        }
    }
}

#[test]
fn mlp_params_roundtrip_exactly() {
    let mut case_rng = StdRng::seed_from_u64(3);
    for _ in 0..40 {
        let seed = case_rng.gen_range(0u64..1000);
        let input = small_vec(&mut case_rng, 5);
        let mut rng = StdRng::seed_from_u64(seed);
        let net = Mlp::new(&[5, 9, 3], Activation::Tanh, Activation::Identity, &mut rng)
            .expect("valid topology");
        let mut rng2 = StdRng::seed_from_u64(seed.wrapping_add(1));
        let mut other = Mlp::new(
            &[5, 9, 3],
            Activation::Tanh,
            Activation::Identity,
            &mut rng2,
        )
        .expect("valid topology");
        other.set_params(&net.to_params()).expect("matching shapes");
        assert_eq!(net.forward(&input), other.forward(&input));
    }
}

#[test]
fn mlp_outputs_are_finite() {
    let mut case_rng = StdRng::seed_from_u64(4);
    for _ in 0..40 {
        let seed = case_rng.gen_range(0u64..200);
        let input = small_vec(&mut case_rng, 4);
        let mut rng = StdRng::seed_from_u64(seed);
        let net = Mlp::new(&[4, 8, 8, 2], Activation::Relu, Activation::Tanh, &mut rng)
            .expect("valid topology");
        let out = net.forward(&input);
        assert!(out.iter().all(|v| v.is_finite()));
        assert!(
            out.iter().all(|v| v.abs() <= 1.0),
            "tanh head bounds outputs"
        );
    }
}

#[test]
fn sgd_step_moves_toward_target() {
    for seed in 0u64..30 {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut net = Mlp::new(&[2, 6, 1], Activation::Tanh, Activation::Identity, &mut rng)
            .expect("valid topology");
        let input = [0.4, -0.2];
        let target = [0.7];
        let before = (net.forward(&input)[0] - target[0]).powi(2);
        for _ in 0..20 {
            net.train_step(&input, &target, 0.1);
        }
        let after = (net.forward(&input)[0] - target[0]).powi(2);
        assert!(
            after <= before + 1e-12,
            "loss must not grow: {before} -> {after}"
        );
    }
}

#[test]
fn policy_actions_always_actuatable() {
    let mut case_rng = StdRng::seed_from_u64(5);
    for _ in 0..CASES {
        let seed = case_rng.gen_range(0u64..100);
        let lateral = case_rng.gen_range(-1.5..1.5);
        let mut rng = StdRng::seed_from_u64(seed);
        let policy = DrivingPolicy::new(&mut rng).expect("fixed topology");
        let f = PolicyFeatures {
            lateral,
            heading: case_rng.gen_range(-1.5..1.5),
            speed: case_rng.gen_range(0.0..1.0),
            obstacle_proximity: case_rng.gen_range(0.0..1.0),
            obstacle_bearing: case_rng.gen_range(-3.0..3.0),
            obstacle_lateral: lateral * 0.5,
            progress: 0.3,
        };
        let u = policy.act(&f);
        assert!(u.steering.abs() <= 1.0);
        assert!(u.throttle.abs() <= 1.0);
    }
}

// --- Zero-allocation fast paths must match the allocating APIs exactly ---

#[test]
fn matvec_into_matches_matvec_exactly() {
    let mut rng = StdRng::seed_from_u64(0xBEEF);
    for _ in 0..CASES {
        let rows = rng.gen_range(1usize..8);
        let cols = rng.gen_range(1usize..8);
        let data: Vec<f64> = (0..rows * cols).map(|_| rng.gen_range(-2.0..2.0)).collect();
        let m = Matrix::from_flat(rows, cols, data);
        let x = small_vec(&mut rng, cols);
        let y = small_vec(&mut rng, rows);
        let mut out = vec![f64::NAN; rows];
        m.matvec_into(&x, &mut out);
        assert_eq!(out, m.matvec(&x), "matvec_into must be bit-identical");
        let mut out_t = vec![f64::NAN; cols];
        m.matvec_transposed_into(&y, &mut out_t);
        assert_eq!(
            out_t,
            m.matvec_transposed(&y),
            "matvec_transposed_into must be bit-identical"
        );
    }
}

#[test]
fn forward_into_matches_forward_exactly() {
    use seo_nn::mlp::InferenceScratch;
    let mut case_rng = StdRng::seed_from_u64(0xF00D);
    for case in 0..60 {
        let mut rng = StdRng::seed_from_u64(case);
        let net = Mlp::new(&[5, 11, 7, 2], Activation::Relu, Activation::Tanh, &mut rng)
            .expect("valid topology");
        let mut scratch = InferenceScratch::for_mlp(&net);
        for _ in 0..5 {
            let input = small_vec(&mut case_rng, 5);
            let expected = net.forward(&input);
            let got = net.forward_into(&input, &mut scratch);
            assert_eq!(
                got,
                expected.as_slice(),
                "scratch inference must be bit-identical"
            );
        }
    }
}

#[test]
fn act_scratch_matches_act_exactly() {
    use seo_nn::mlp::InferenceScratch;
    let mut case_rng = StdRng::seed_from_u64(0xCAB);
    for case in 0..40 {
        let mut rng = StdRng::seed_from_u64(case);
        let policy = DrivingPolicy::new(&mut rng).expect("fixed topology");
        let mut scratch = InferenceScratch::new();
        for _ in 0..8 {
            let f = PolicyFeatures {
                lateral: case_rng.gen_range(-1.5..1.5),
                heading: case_rng.gen_range(-1.5..1.5),
                speed: case_rng.gen_range(0.0..1.0),
                obstacle_proximity: case_rng.gen_range(0.0..1.0),
                obstacle_bearing: case_rng.gen_range(-3.0..3.0),
                obstacle_lateral: case_rng.gen_range(-1.0..1.0),
                progress: case_rng.gen_range(0.0..1.0),
            };
            assert_eq!(policy.act_scratch(&f, &mut scratch), policy.act(&f));
        }
    }
}

// --- Kernel backends must match the scalar reference bit-for-bit ---

#[test]
fn blocked_matvec_is_bit_identical_across_shapes() {
    use seo_nn::kernel::{BlockedKernel, ScalarKernel};
    let mut rng = StdRng::seed_from_u64(0xB10C);
    // Deliberate coverage of non-multiple-of-block-width shapes: odd rows
    // and cols, single-row (1xN), single-column (Nx1), every rows % 4 and
    // cols % 4 residue — plus random shapes.
    let mut shapes = vec![
        (1, 1),
        (1, 9),
        (9, 1),
        (2, 16),
        (3, 3),
        (5, 5),
        (6, 7),
        (7, 6),
        (16, 7),
        (16, 16),
        (17, 13),
    ];
    for _ in 0..CASES {
        shapes.push((rng.gen_range(1usize..24), rng.gen_range(1usize..24)));
    }
    for (rows, cols) in shapes {
        let data: Vec<f64> = (0..rows * cols).map(|_| rng.gen_range(-2.0..2.0)).collect();
        let m = Matrix::from_flat(rows, cols, data);
        let x = small_vec(&mut rng, cols);
        let mut scalar = vec![f64::NAN; rows];
        let mut blocked = vec![f64::NAN; rows];
        m.matvec_into_with::<ScalarKernel>(&x, &mut scalar);
        m.matvec_into_with::<BlockedKernel>(&x, &mut blocked);
        assert_eq!(scalar, blocked, "{rows}x{cols}: blocked must be exact");
        // And both must equal the long-standing plain path.
        assert_eq!(blocked, m.matvec(&x), "{rows}x{cols}: plain path differs");
    }
}

#[test]
fn kernel_empty_shapes_are_consistent() {
    use seo_nn::kernel::{BlockedKernel, Kernel, ScalarKernel};
    // `Matrix` forbids zero dimensions, so the degenerate shapes are pinned
    // at the kernel layer directly: zero rows writes nothing, zero cols
    // writes the empty sum.
    let mut none: [f64; 0] = [];
    ScalarKernel::matvec(3, &[], &[1.0, 2.0, 3.0], &mut none);
    BlockedKernel::matvec(3, &[], &[1.0, 2.0, 3.0], &mut none);
    for n in 1usize..6 {
        let mut scalar = vec![f64::NAN; n];
        let mut blocked = vec![f64::NAN; n];
        ScalarKernel::matvec(0, &[], &[], &mut scalar);
        BlockedKernel::matvec(0, &[], &[], &mut blocked);
        assert_eq!(scalar, vec![0.0; n]);
        assert_eq!(blocked, vec![0.0; n]);
    }
}

#[test]
fn blocked_axpy_is_bit_identical() {
    use seo_nn::kernel::{BlockedKernel, ScalarKernel};
    use seo_nn::tensor::axpy_with;
    let mut rng = StdRng::seed_from_u64(0xA897);
    for _ in 0..CASES {
        let n = rng.gen_range(1usize..40);
        let alpha = rng.gen_range(-2.0..2.0);
        let b = small_vec(&mut rng, n);
        let mut scalar = small_vec(&mut rng, n);
        let mut blocked = scalar.clone();
        axpy_with::<ScalarKernel>(&mut scalar, &b, alpha);
        axpy_with::<BlockedKernel>(&mut blocked, &b, alpha);
        assert_eq!(scalar, blocked, "axpy n={n} diverged");
    }
}

#[test]
fn every_backend_reproduces_mlp_and_policy_outputs() {
    use seo_nn::kernel::{BlockedKernel, KernelBackend, ScalarKernel};
    use seo_nn::mlp::InferenceScratch;
    // Exercised through the enum so a future backend added to ALL fails
    // here until its generic path is wired up everywhere.
    let mut case_rng = StdRng::seed_from_u64(0xD15);
    for case in 0..30 {
        let mut rng = StdRng::seed_from_u64(case);
        // 7 -> 16 -> 16 -> 2 is the paper policy topology; 5 -> 11 -> 3
        // adds odd widths.
        for sizes in [&[7usize, 16, 16, 2][..], &[5, 11, 3][..]] {
            let net = Mlp::new(sizes, Activation::Tanh, Activation::Tanh, &mut rng)
                .expect("valid topology");
            let input = small_vec(&mut case_rng, sizes[0]);
            let mut scratch = InferenceScratch::for_mlp(&net);
            let reference = net.forward(&input);
            for backend in KernelBackend::ALL {
                let got = match backend {
                    KernelBackend::Scalar => {
                        net.forward_into_with::<ScalarKernel>(&input, &mut scratch)
                    }
                    KernelBackend::Blocked => {
                        net.forward_into_with::<BlockedKernel>(&input, &mut scratch)
                    }
                };
                assert_eq!(got, reference.as_slice(), "{backend} diverged on mlp");
            }
        }
        let policy = DrivingPolicy::new(&mut rng).expect("fixed topology");
        let f = PolicyFeatures {
            lateral: case_rng.gen_range(-1.5..1.5),
            heading: case_rng.gen_range(-1.5..1.5),
            speed: case_rng.gen_range(0.0..1.0),
            obstacle_proximity: case_rng.gen_range(0.0..1.0),
            obstacle_bearing: case_rng.gen_range(-3.0..3.0),
            obstacle_lateral: case_rng.gen_range(-1.0..1.0),
            progress: case_rng.gen_range(0.0..1.0),
        };
        let mut scratch = InferenceScratch::new();
        let reference = policy.act(&f);
        assert_eq!(
            policy.act_scratch_with::<ScalarKernel>(&f, &mut scratch),
            reference
        );
        assert_eq!(
            policy.act_scratch_with::<BlockedKernel>(&f, &mut scratch),
            reference
        );
    }
}

#[test]
fn blocked_autoencoder_paths_match_exactly() {
    use seo_nn::autoencoder::Autoencoder;
    use seo_nn::kernel::BlockedKernel;
    use seo_nn::mlp::InferenceScratch;
    let mut case_rng = StdRng::seed_from_u64(0xAEB);
    for case in 0..20 {
        let mut rng = StdRng::seed_from_u64(case);
        let ae = Autoencoder::new(13, 5, &mut rng).expect("valid dims");
        let mut scratch = InferenceScratch::new();
        let scan: Vec<f64> = (0..13).map(|_| case_rng.gen_range(0.0..1.0)).collect();
        assert_eq!(
            ae.encode_into_with::<BlockedKernel>(&scan, &mut scratch),
            ae.encode(&scan).as_slice()
        );
        assert_eq!(
            ae.reconstruct_into_with::<BlockedKernel>(&scan, &mut scratch),
            ae.reconstruct(&scan).as_slice()
        );
    }
}

#[test]
fn autoencoder_scratch_paths_match_exactly() {
    use seo_nn::autoencoder::Autoencoder;
    use seo_nn::mlp::InferenceScratch;
    let mut case_rng = StdRng::seed_from_u64(0xAE);
    for case in 0..30 {
        let mut rng = StdRng::seed_from_u64(case);
        let ae = Autoencoder::new(12, 4, &mut rng).expect("valid dims");
        let mut scratch = InferenceScratch::new();
        for _ in 0..4 {
            let scan: Vec<f64> = (0..12).map(|_| case_rng.gen_range(0.0..1.0)).collect();
            assert_eq!(
                ae.encode_into(&scan, &mut scratch),
                ae.encode(&scan).as_slice()
            );
            assert_eq!(
                ae.reconstruct_into(&scan, &mut scratch),
                ae.reconstruct(&scan).as_slice()
            );
            let err_scratch = ae.reconstruction_error_scratch(&scan, &mut scratch);
            assert_eq!(err_scratch, ae.reconstruction_error(&scan));
        }
    }
}
