//! Pluggable inference kernel backends — the compute layer under every
//! `*_into` hot path.
//!
//! The SEO runtime spends its per-control-step budget in three dense
//! primitives: the matrix–vector product, the fused dense layer
//! (matvec + bias + activation), and `axpy`. This module makes that layer a
//! *seam*: the [`Kernel`] trait names the three primitives, and every hot
//! entry point above it ([`Matrix::matvec_into_with`](crate::tensor::Matrix::matvec_into_with),
//! [`Dense::forward_into_with`](crate::layer::Dense::forward_into_with),
//! [`Mlp::forward_into_with`](crate::mlp::Mlp::forward_into_with),
//! [`DrivingPolicy::act_scratch_with`](crate::policy::DrivingPolicy::act_scratch_with))
//! is generic over an implementation.
//!
//! Two backends ship:
//!
//! * [`ScalarKernel`] — the plain loops the repo has always run. This is the
//!   **bit-exactness reference**: every other backend must reproduce its
//!   output to the last bit.
//! * [`BlockedKernel`] — register-blocked, unrolled, auto-vectorizer-friendly
//!   loops that process [`MR`] output rows at a time (each with its own
//!   accumulator chain) and step columns in [`NR`]-wide unrolled groups.
//!
//! # The ordering invariant
//!
//! A backend is only admissible if it performs, per output element, **the
//! same floating-point operations in the same order** as [`ScalarKernel`].
//! Floating-point addition is not associative, so this is the only way
//! "bit-identical across backends" can hold — and bit-identity is what the
//! whole distributed-sweep stack verifies against
//! (serial == threaded == multi-process == multi-host, see ARCHITECTURE.md).
//! [`BlockedKernel`] gets its speed from instruction-level parallelism
//! *across* rows (independent accumulator chains) while keeping each row's
//! accumulation strictly left-to-right — never from reassociating a sum.
//! The property tests in `crates/nn/tests/properties.rs` enforce this for
//! every backend in [`KernelBackend::ALL`].
//!
//! Dispatch is **monomorphized**: generics, not `dyn`, carry the backend
//! through the hot loop. The runtime-chosen [`KernelBackend`] enum lives at
//! the API boundary only (one `match` per episode in
//! `seo_core::runtime::RuntimeLoop::run_with`), so the per-step code the
//! optimizer sees is branch-free and inlinable.
//!
//! The backend book — contract, dispatch design, how to add a third backend,
//! and measured scalar-vs-blocked numbers — is `docs/kernels.md` at the
//! repository root.
//!
//! # Example
//!
//! ```
//! use seo_nn::kernel::{BlockedKernel, Kernel, KernelBackend, ScalarKernel};
//! use seo_nn::tensor::Matrix;
//!
//! let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
//! let x = [1.0, -1.0, 0.5];
//! let (mut scalar, mut blocked) = (vec![0.0; 2], vec![0.0; 2]);
//! m.matvec_into_with::<ScalarKernel>(&x, &mut scalar);
//! m.matvec_into_with::<BlockedKernel>(&x, &mut blocked);
//! // The backends are bit-identical, not merely close:
//! assert_eq!(scalar, blocked);
//!
//! // Runtime selection happens at the API boundary via the enum:
//! let backend: KernelBackend = "blocked".parse()?;
//! assert_eq!(backend.name(), "blocked");
//! assert!(KernelBackend::parse("sse9").is_err()); // lists the valid names
//! # Ok::<(), seo_nn::kernel::UnknownKernelError>(())
//! ```

use crate::layer::Activation;
use std::fmt;
use std::str::FromStr;

/// Rows per register block in [`BlockedKernel`]: four output elements are
/// accumulated concurrently, giving the CPU four independent dependency
/// chains while each chain stays in scalar order.
pub const MR: usize = 4;

/// Column unroll width in [`BlockedKernel`]: the column loop advances in
/// groups of four fixed-size chunks (bounds checks hoisted), with the adds
/// inside a group still applied strictly left-to-right.
pub const NR: usize = 4;

/// The three dense primitives the inference hot path is built from.
///
/// Implementations are zero-sized marker types; call sites are generic over
/// the implementation (`fn f<K: Kernel>(…)`) so the backend monomorphizes
/// into the hot loop — no `dyn`, no per-call dispatch.
///
/// # Contract
///
/// For every method, an implementation must perform the same floating-point
/// operations **in the same order per output element** as [`ScalarKernel`],
/// making its output bit-identical. Degenerate shapes are defined, not UB:
/// zero rows is a no-op, zero columns writes `0.0` into every output
/// element (the empty sum). Dimension mismatches are caught by
/// `debug_assert!` here and by the `assert!`s of the public `Matrix`/`Dense`
/// wrappers above this layer.
pub trait Kernel: Copy + Default + Send + Sync + 'static {
    /// Backend name as it appears in `--kernel` flags, `SEO_KERNEL`, bench
    /// labels, and `BENCH_sweep.json`.
    const NAME: &'static str;

    /// Dense matrix–vector product: `out[r] = Σ_k data[r·cols + k] · x[k]`,
    /// summed left-to-right per row. `data` is row-major with
    /// `out.len()` rows and `cols` columns.
    fn matvec(cols: usize, data: &[f64], x: &[f64], out: &mut [f64]);

    /// Fused dense layer: `out[r] = act(Σ_k data[r·cols + k] · x[k] + bias[r])`,
    /// the row sum accumulated exactly as in [`Self::matvec`].
    ///
    /// The default runs [`Self::matvec`] and then the bias + activation
    /// sweep — the exact arithmetic of the historical two-pass
    /// `Dense::forward_into`, so any backend whose `matvec` honors the
    /// ordering contract gets a correct fused form for free. Override only
    /// for a genuinely fused backend, and keep this order: row sum, plus
    /// bias, then activation.
    fn matvec_bias_act(
        cols: usize,
        data: &[f64],
        x: &[f64],
        bias: &[f64],
        act: Activation,
        out: &mut [f64],
    ) {
        Self::matvec(cols, data, x, out);
        for (o, b) in out.iter_mut().zip(bias) {
            *o = act.apply(*o + b);
        }
    }

    /// In-place `a[i] += alpha · b[i]`.
    fn axpy(a: &mut [f64], b: &[f64], alpha: f64);
}

#[inline]
fn debug_check_matvec(cols: usize, data: &[f64], x: &[f64], out: &[f64]) {
    debug_assert_eq!(x.len(), cols, "kernel matvec: x length mismatch");
    debug_assert_eq!(
        data.len(),
        out.len() * cols,
        "kernel matvec: data length mismatch"
    );
}

/// The reference backend: the plain scalar loops every other backend must
/// reproduce bit-for-bit.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScalarKernel;

impl Kernel for ScalarKernel {
    const NAME: &'static str = "scalar";

    fn matvec(cols: usize, data: &[f64], x: &[f64], out: &mut [f64]) {
        debug_check_matvec(cols, data, x, out);
        if cols == 0 {
            out.fill(0.0);
            return;
        }
        for (o, row) in out.iter_mut().zip(data.chunks_exact(cols)) {
            *o = row.iter().zip(x).map(|(a, b)| a * b).sum();
        }
    }

    fn axpy(a: &mut [f64], b: &[f64], alpha: f64) {
        debug_assert_eq!(a.len(), b.len(), "kernel axpy: length mismatch");
        for (x, &y) in a.iter_mut().zip(b) {
            *x += alpha * y;
        }
    }
}

/// Register-blocked, unrolled backend.
///
/// `matvec` walks the output in blocks of [`MR`] rows. Within a block the
/// four rows' accumulators are updated together column-group by
/// column-group, so the CPU sees four independent add chains (ILP) and the
/// input vector `x` is reused [`MR`] times per cache pass — while each
/// individual accumulator still receives its products strictly
/// left-to-right, which keeps the result bit-identical to [`ScalarKernel`].
/// The column loop advances in [`NR`]-wide fixed-size chunks
/// (`chunks_exact`), letting the compiler hoist bounds checks and keep the
/// block in registers; leftover rows and columns fall back to the scalar
/// pattern.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BlockedKernel;

impl BlockedKernel {
    /// One row's tail: continue `acc` over `row`/`x` in scalar order.
    #[inline]
    fn row_tail(acc: f64, row: &[f64], x: &[f64]) -> f64 {
        row.iter().zip(x).fold(acc, |acc, (a, b)| acc + a * b)
    }

    /// Dot product of one full row in scalar order (used for the < MR
    /// leftover rows).
    #[inline]
    fn row_dot(row: &[f64], x: &[f64]) -> f64 {
        Self::row_tail(0.0, row, x)
    }

    /// Accumulates one block of [`MR`] rows against `x`, returning the four
    /// row sums. Each accumulator's adds are applied strictly left-to-right.
    #[inline]
    fn block_dot(cols: usize, block: &[f64], x: &[f64]) -> [f64; MR] {
        let (r0, rest) = block.split_at(cols);
        let (r1, rest) = rest.split_at(cols);
        let (r2, r3) = rest.split_at(cols);
        let (mut a0, mut a1, mut a2, mut a3) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
        let mut xc = x.chunks_exact(NR);
        let mut c0 = r0.chunks_exact(NR);
        let mut c1 = r1.chunks_exact(NR);
        let mut c2 = r2.chunks_exact(NR);
        let mut c3 = r3.chunks_exact(NR);
        for ((((xk, k0), k1), k2), k3) in (&mut xc)
            .zip(&mut c0)
            .zip(&mut c1)
            .zip(&mut c2)
            .zip(&mut c3)
        {
            // Four independent accumulator chains; within each chain the
            // adds stay in column order, so every row sum is the scalar sum.
            a0 = (((a0 + k0[0] * xk[0]) + k0[1] * xk[1]) + k0[2] * xk[2]) + k0[3] * xk[3];
            a1 = (((a1 + k1[0] * xk[0]) + k1[1] * xk[1]) + k1[2] * xk[2]) + k1[3] * xk[3];
            a2 = (((a2 + k2[0] * xk[0]) + k2[1] * xk[1]) + k2[2] * xk[2]) + k2[3] * xk[3];
            a3 = (((a3 + k3[0] * xk[0]) + k3[1] * xk[1]) + k3[2] * xk[2]) + k3[3] * xk[3];
        }
        let xt = xc.remainder();
        [
            Self::row_tail(a0, c0.remainder(), xt),
            Self::row_tail(a1, c1.remainder(), xt),
            Self::row_tail(a2, c2.remainder(), xt),
            Self::row_tail(a3, c3.remainder(), xt),
        ]
    }

    /// Accumulates a block of two rows (the leftover path for matrices with
    /// `rows % MR >= 2`, and the whole of a 2-row matrix such as a policy
    /// head): two independent chains, each in scalar order.
    #[inline]
    fn pair_dot(r0: &[f64], r1: &[f64], x: &[f64]) -> [f64; 2] {
        let (mut a0, mut a1) = (0.0f64, 0.0f64);
        let mut xc = x.chunks_exact(NR);
        let mut c0 = r0.chunks_exact(NR);
        let mut c1 = r1.chunks_exact(NR);
        for ((xk, k0), k1) in (&mut xc).zip(&mut c0).zip(&mut c1) {
            a0 = (((a0 + k0[0] * xk[0]) + k0[1] * xk[1]) + k0[2] * xk[2]) + k0[3] * xk[3];
            a1 = (((a1 + k1[0] * xk[0]) + k1[1] * xk[1]) + k1[2] * xk[2]) + k1[3] * xk[3];
        }
        let xt = xc.remainder();
        [
            Self::row_tail(a0, c0.remainder(), xt),
            Self::row_tail(a1, c1.remainder(), xt),
        ]
    }
}

impl Kernel for BlockedKernel {
    const NAME: &'static str = "blocked";

    fn matvec(cols: usize, data: &[f64], x: &[f64], out: &mut [f64]) {
        debug_check_matvec(cols, data, x, out);
        if cols == 0 {
            out.fill(0.0);
            return;
        }
        let mut blocks = data.chunks_exact(MR * cols);
        let mut outs = out.chunks_exact_mut(MR);
        for (block, o) in (&mut blocks).zip(&mut outs) {
            o.copy_from_slice(&Self::block_dot(cols, block, x));
        }
        // Leftover rows (< MR): a two-row block when possible, then at most
        // one plain scalar-order dot product.
        let mut leftover = blocks.remainder();
        let mut o = outs.into_remainder();
        if o.len() >= 2 {
            let (pair, rest) = leftover.split_at(2 * cols);
            let (r0, r1) = pair.split_at(cols);
            o[..2].copy_from_slice(&Self::pair_dot(r0, r1, x));
            leftover = rest;
            o = &mut o[2..];
        }
        if let Some(last) = o.first_mut() {
            *last = Self::row_dot(leftover, x);
        }
    }

    fn axpy(a: &mut [f64], b: &[f64], alpha: f64) {
        debug_assert_eq!(a.len(), b.len(), "kernel axpy: length mismatch");
        let mut ac = a.chunks_exact_mut(NR);
        let mut bc = b.chunks_exact(NR);
        for (xs, ys) in (&mut ac).zip(&mut bc) {
            // Elementwise and independent: unrolling cannot change results.
            xs[0] += alpha * ys[0];
            xs[1] += alpha * ys[1];
            xs[2] += alpha * ys[2];
            xs[3] += alpha * ys[3];
        }
        for (x, &y) in ac.into_remainder().iter_mut().zip(bc.remainder()) {
            *x += alpha * y;
        }
    }
}

/// Runtime-chosen kernel backend — the enum form of the [`Kernel`]
/// implementations, used at API boundaries (CLI flags, `SEO_KERNEL`,
/// `BENCH_sweep.json`, `RuntimeLoop::with_kernel`).
///
/// Hot loops never branch on this: callers `match` once (per episode, per
/// bench cell) and enter a monomorphized path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum KernelBackend {
    /// [`ScalarKernel`] — the reference loops (the default).
    #[default]
    Scalar,
    /// [`BlockedKernel`] — register-blocked, unrolled loops.
    Blocked,
}

impl KernelBackend {
    /// Every available backend, in the order they are documented and
    /// benchmarked. Tests iterate this to hold all backends to the
    /// bit-exactness contract.
    pub const ALL: [Self; 2] = [Self::Scalar, Self::Blocked];

    /// The environment variable consulted by [`Self::from_env`] (and every
    /// binary's `--kernel` default): `SEO_KERNEL`.
    pub const ENV_VAR: &'static str = "SEO_KERNEL";

    /// The backend's canonical name (what [`Self::parse`] accepts).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Self::Scalar => ScalarKernel::NAME,
            Self::Blocked => BlockedKernel::NAME,
        }
    }

    /// Comma-separated list of valid names, for error messages and usage
    /// strings: `"scalar, blocked"`.
    #[must_use]
    pub fn valid_names() -> String {
        Self::ALL
            .iter()
            .map(|b| b.name())
            .collect::<Vec<_>>()
            .join(", ")
    }

    /// Parses a backend name (as passed to `--kernel` or `SEO_KERNEL`).
    /// Matching is exact on the canonical lower-case names.
    ///
    /// # Errors
    ///
    /// Returns [`UnknownKernelError`] — whose message lists the valid
    /// names — for anything else.
    pub fn parse(value: &str) -> Result<Self, UnknownKernelError> {
        Self::ALL
            .into_iter()
            .find(|b| b.name() == value)
            .ok_or_else(|| UnknownKernelError {
                value: value.to_owned(),
            })
    }

    /// Resolves the backend from the `SEO_KERNEL` environment variable:
    /// the default ([`Self::Scalar`]) when unset or empty, otherwise the
    /// parsed value.
    ///
    /// # Errors
    ///
    /// Returns [`UnknownKernelError`] when the variable is set to an
    /// unknown name — callers must reject loudly (the sweep binaries exit
    /// 2 with the valid names), never fall back silently.
    pub fn from_env() -> Result<Self, UnknownKernelError> {
        match std::env::var(Self::ENV_VAR) {
            Ok(value) if !value.is_empty() => Self::parse(&value),
            _ => Ok(Self::default()),
        }
    }
}

impl FromStr for KernelBackend {
    type Err = UnknownKernelError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Self::parse(s)
    }
}

impl fmt::Display for KernelBackend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// An unrecognized kernel backend name; the message lists the valid names
/// so CLI users can self-correct.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownKernelError {
    /// The rejected name.
    pub value: String,
}

impl fmt::Display for UnknownKernelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown kernel backend '{}' (valid: {})",
            self.value,
            KernelBackend::valid_names()
        )
    }
}

impl std::error::Error for UnknownKernelError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn filled(n: usize, f: impl Fn(usize) -> f64) -> Vec<f64> {
        (0..n).map(f).collect()
    }

    #[test]
    fn scalar_matvec_matches_manual() {
        let data = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let mut out = [0.0; 2];
        ScalarKernel::matvec(3, &data, &[1.0, 1.0, 1.0], &mut out);
        assert_eq!(out, [6.0, 15.0]);
    }

    #[test]
    fn blocked_matches_scalar_across_shapes() {
        // Non-multiple-of-block shapes included: odd rows/cols, 1xN, Nx1.
        for (rows, cols) in [
            (1, 1),
            (1, 7),
            (7, 1),
            (3, 5),
            (4, 4),
            (5, 9),
            (8, 16),
            (13, 11),
            (16, 7),
        ] {
            let data = filled(rows * cols, |i| (i as f64).sin() * 2.0 - 0.3);
            let x = filled(cols, |i| (i as f64).cos() * 1.5);
            let mut scalar = vec![f64::NAN; rows];
            let mut blocked = vec![f64::NAN; rows];
            ScalarKernel::matvec(cols, &data, &x, &mut scalar);
            BlockedKernel::matvec(cols, &data, &x, &mut blocked);
            assert_eq!(scalar, blocked, "{rows}x{cols} matvec diverged");
        }
    }

    #[test]
    fn degenerate_shapes_are_defined() {
        // Zero rows: nothing written; zero cols: the empty sum (0.0).
        let mut empty: [f64; 0] = [];
        ScalarKernel::matvec(5, &[], &[0.0; 5], &mut empty);
        BlockedKernel::matvec(5, &[], &[0.0; 5], &mut empty);
        let mut out = [f64::NAN; 3];
        ScalarKernel::matvec(0, &[], &[], &mut out);
        assert_eq!(out, [0.0; 3]);
        out = [f64::NAN; 3];
        BlockedKernel::matvec(0, &[], &[], &mut out);
        assert_eq!(out, [0.0; 3]);
    }

    #[test]
    fn fused_matches_two_pass() {
        let data = filled(6 * 5, |i| 0.1 * i as f64 - 1.0);
        let x = filled(5, |i| 0.3 * i as f64 - 0.5);
        let bias = filled(6, |i| 0.05 * i as f64);
        for act in [
            Activation::Identity,
            Activation::Relu,
            Activation::Tanh,
            Activation::Sigmoid,
        ] {
            let mut two_pass = vec![0.0; 6];
            ScalarKernel::matvec(5, &data, &x, &mut two_pass);
            for (o, b) in two_pass.iter_mut().zip(&bias) {
                *o = act.apply(*o + b);
            }
            for (name, fused) in [("scalar", true), ("blocked", false)] {
                let mut out = vec![f64::NAN; 6];
                if fused {
                    ScalarKernel::matvec_bias_act(5, &data, &x, &bias, act, &mut out);
                } else {
                    BlockedKernel::matvec_bias_act(5, &data, &x, &bias, act, &mut out);
                }
                assert_eq!(out, two_pass, "{name} fused {act:?} diverged");
            }
        }
    }

    #[test]
    fn axpy_backends_agree() {
        for n in [0usize, 1, 3, 4, 5, 11, 16] {
            let b = filled(n, |i| (i as f64) * 0.7 - 2.0);
            let mut scalar = filled(n, |i| (i as f64) * -0.2);
            let mut blocked = scalar.clone();
            ScalarKernel::axpy(&mut scalar, &b, 0.37);
            BlockedKernel::axpy(&mut blocked, &b, 0.37);
            assert_eq!(scalar, blocked, "axpy length {n} diverged");
        }
    }

    #[test]
    fn backend_enum_roundtrips_names() {
        for backend in KernelBackend::ALL {
            assert_eq!(KernelBackend::parse(backend.name()), Ok(backend));
            assert_eq!(backend.name().parse::<KernelBackend>(), Ok(backend));
            assert_eq!(backend.to_string(), backend.name());
        }
        assert_eq!(KernelBackend::default(), KernelBackend::Scalar);
        assert_eq!(KernelBackend::valid_names(), "scalar, blocked");
    }

    #[test]
    fn unknown_names_are_rejected_with_the_valid_list() {
        for bad in ["", "SCALAR", "avx512", "blocked ", "simd"] {
            let err = KernelBackend::parse(bad).expect_err("must reject");
            let message = err.to_string();
            assert!(message.contains(&format!("'{bad}'")), "{message}");
            assert!(message.contains("scalar, blocked"), "{message}");
        }
    }
}
