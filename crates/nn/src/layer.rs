//! Dense layers and activations with manual backprop.

use crate::error::NnError;
use crate::kernel::{Kernel, ScalarKernel};
use crate::tensor::Matrix;
use rand::Rng;

/// Pointwise nonlinearity applied after a dense layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Activation {
    /// `f(x) = x`.
    Identity,
    /// `f(x) = max(0, x)`.
    Relu,
    /// `f(x) = tanh(x)`.
    Tanh,
    /// `f(x) = 1 / (1 + e^-x)`.
    Sigmoid,
}

impl Activation {
    /// Applies the activation.
    #[must_use]
    pub fn apply(self, x: f64) -> f64 {
        match self {
            Self::Identity => x,
            Self::Relu => x.max(0.0),
            Self::Tanh => x.tanh(),
            Self::Sigmoid => 1.0 / (1.0 + (-x).exp()),
        }
    }

    /// Derivative expressed in terms of the *output* `y = f(x)` (all four
    /// activations admit this form, which is what backprop caches).
    #[must_use]
    pub fn derivative_from_output(self, y: f64) -> f64 {
        match self {
            Self::Identity => 1.0,
            Self::Relu => {
                if y > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Self::Tanh => 1.0 - y * y,
            Self::Sigmoid => y * (1.0 - y),
        }
    }
}

/// A fully-connected layer `y = f(Wx + b)`.
#[derive(Debug, Clone, PartialEq)]
pub struct Dense {
    weights: Matrix,
    biases: Vec<f64>,
    activation: Activation,
}

/// Cached forward pass of one layer, consumed by [`Dense::backward`].
#[derive(Debug, Clone)]
pub struct LayerCache {
    /// The layer input.
    pub input: Vec<f64>,
    /// The post-activation output.
    pub output: Vec<f64>,
}

impl Dense {
    /// Creates a layer with Xavier/Glorot-uniform initialized weights and
    /// zero biases.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] if either dimension is zero.
    pub fn new<R: Rng>(
        input_dim: usize,
        output_dim: usize,
        activation: Activation,
        rng: &mut R,
    ) -> Result<Self, NnError> {
        if input_dim == 0 {
            return Err(NnError::ShapeMismatch {
                context: "dense input",
                expected: 1,
                actual: 0,
            });
        }
        if output_dim == 0 {
            return Err(NnError::ShapeMismatch {
                context: "dense output",
                expected: 1,
                actual: 0,
            });
        }
        let limit = (6.0 / (input_dim + output_dim) as f64).sqrt();
        let mut weights = Matrix::zeros(output_dim, input_dim);
        for w in weights.as_mut_slice() {
            *w = rng.gen_range(-limit..=limit);
        }
        Ok(Self {
            weights,
            biases: vec![0.0; output_dim],
            activation,
        })
    }

    /// Input dimension.
    #[must_use]
    pub fn input_dim(&self) -> usize {
        self.weights.cols()
    }

    /// Output dimension.
    #[must_use]
    pub fn output_dim(&self) -> usize {
        self.weights.rows()
    }

    /// The layer's activation.
    #[must_use]
    pub fn activation(&self) -> Activation {
        self.activation
    }

    /// Total number of trainable parameters.
    #[must_use]
    pub fn param_count(&self) -> usize {
        self.weights.rows() * self.weights.cols() + self.biases.len()
    }

    /// Forward pass.
    ///
    /// Allocates the output; inference hot paths use [`Self::forward_into`]
    /// with a reused buffer instead.
    ///
    /// # Panics
    ///
    /// Panics if `input.len() != input_dim` (callers validate at the
    /// network boundary).
    #[must_use]
    pub fn forward(&self, input: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; self.output_dim()];
        self.forward_into(input, &mut out);
        out
    }

    /// Forward pass written into a caller-provided buffer — allocation-free.
    ///
    /// # Panics
    ///
    /// Panics if `input.len() != input_dim` or `out.len() != output_dim`.
    pub fn forward_into(&self, input: &[f64], out: &mut [f64]) {
        self.forward_into_with::<ScalarKernel>(input, out);
    }

    /// [`Self::forward_into`] over an explicit [`Kernel`] backend, running
    /// the backend's **fused** matvec + bias + activation primitive. All
    /// backends are bit-identical by contract (see [`crate::kernel`]).
    ///
    /// # Panics
    ///
    /// Panics if `input.len() != input_dim` or `out.len() != output_dim`.
    pub fn forward_into_with<K: Kernel>(&self, input: &[f64], out: &mut [f64]) {
        assert_eq!(
            input.len(),
            self.input_dim(),
            "dense input dimension mismatch"
        );
        assert_eq!(
            out.len(),
            self.output_dim(),
            "dense output dimension mismatch"
        );
        K::matvec_bias_act(
            self.weights.cols(),
            self.weights.as_slice(),
            input,
            &self.biases,
            self.activation,
            out,
        );
    }

    /// Forward pass that also returns the cache needed for backprop.
    #[must_use]
    pub fn forward_cached(&self, input: &[f64]) -> LayerCache {
        LayerCache {
            input: input.to_vec(),
            output: self.forward(input),
        }
    }

    /// Backward pass: given `d_loss/d_output`, updates weights and biases by
    /// one SGD step of size `lr` and returns `d_loss/d_input`.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch between `grad_output` and the layer.
    pub fn backward(&mut self, cache: &LayerCache, grad_output: &[f64], lr: f64) -> Vec<f64> {
        assert_eq!(
            grad_output.len(),
            self.output_dim(),
            "grad dimension mismatch"
        );
        // delta = dL/dy * f'(y)
        let delta: Vec<f64> = grad_output
            .iter()
            .zip(&cache.output)
            .map(|(&g, &y)| g * self.activation.derivative_from_output(y))
            .collect();
        let grad_input = self.weights.matvec_transposed(&delta);
        // SGD update: W -= lr * delta xᵀ, b -= lr * delta.
        self.weights.add_outer(&delta, &cache.input, -lr);
        for (b, &d) in self.biases.iter_mut().zip(&delta) {
            *b -= lr * d;
        }
        grad_input
    }

    /// Copies all parameters (weights row-major, then biases) into `out`,
    /// returning how many values were written.
    ///
    /// # Panics
    ///
    /// Panics if `out` is shorter than [`Self::param_count`].
    pub fn write_params(&self, out: &mut [f64]) -> usize {
        let n = self.param_count();
        let w = self.weights.as_slice();
        out[..w.len()].copy_from_slice(w);
        out[w.len()..n].copy_from_slice(&self.biases);
        n
    }

    /// Loads parameters from a flat slice (inverse of [`Self::write_params`]),
    /// returning how many values were read.
    ///
    /// # Panics
    ///
    /// Panics if `params` is shorter than [`Self::param_count`].
    pub fn read_params(&mut self, params: &[f64]) -> usize {
        let n = self.param_count();
        let w_len = self.weights.rows() * self.weights.cols();
        self.weights
            .as_mut_slice()
            .copy_from_slice(&params[..w_len]);
        self.biases.copy_from_slice(&params[w_len..n]);
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn activations_match_definitions() {
        assert_eq!(Activation::Identity.apply(-2.0), -2.0);
        assert_eq!(Activation::Relu.apply(-2.0), 0.0);
        assert_eq!(Activation::Relu.apply(2.0), 2.0);
        assert!((Activation::Tanh.apply(0.0)).abs() < 1e-12);
        assert!((Activation::Sigmoid.apply(0.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn derivatives_from_output() {
        // tanh'(x) = 1 - tanh(x)^2
        let y = Activation::Tanh.apply(0.7);
        assert!((Activation::Tanh.derivative_from_output(y) - (1.0 - y * y)).abs() < 1e-12);
        // sigmoid'(x) = s(1-s)
        let s = Activation::Sigmoid.apply(0.3);
        assert!((Activation::Sigmoid.derivative_from_output(s) - s * (1.0 - s)).abs() < 1e-12);
        assert_eq!(Activation::Relu.derivative_from_output(0.0), 0.0);
        assert_eq!(Activation::Relu.derivative_from_output(1.0), 1.0);
        assert_eq!(Activation::Identity.derivative_from_output(123.0), 1.0);
    }

    #[test]
    fn forward_shape_and_determinism() {
        let layer = Dense::new(3, 5, Activation::Relu, &mut rng()).expect("valid dims");
        let out = layer.forward(&[0.1, 0.2, 0.3]);
        assert_eq!(out.len(), 5);
        assert_eq!(out, layer.forward(&[0.1, 0.2, 0.3]));
        assert!(out.iter().all(|&v| v >= 0.0), "relu output is non-negative");
    }

    #[test]
    fn zero_dims_rejected() {
        assert!(Dense::new(0, 5, Activation::Relu, &mut rng()).is_err());
        assert!(Dense::new(5, 0, Activation::Relu, &mut rng()).is_err());
    }

    #[test]
    fn param_roundtrip() {
        let mut shared_rng = rng();
        let layer = Dense::new(4, 3, Activation::Tanh, &mut shared_rng).expect("valid dims");
        let mut buf = vec![0.0; layer.param_count()];
        assert_eq!(layer.write_params(&mut buf), 15);
        let mut other = Dense::new(4, 3, Activation::Tanh, &mut shared_rng).expect("valid dims");
        assert_ne!(other.forward(&[1.0; 4]), layer.forward(&[1.0; 4]));
        other.read_params(&buf);
        assert_eq!(other.forward(&[1.0; 4]), layer.forward(&[1.0; 4]));
    }

    #[test]
    fn backward_reduces_loss_on_linear_target() {
        // Learn y = 2x with a single identity layer.
        let mut layer = Dense::new(1, 1, Activation::Identity, &mut rng()).expect("valid dims");
        let mut last_loss = f64::INFINITY;
        for _ in 0..200 {
            let mut loss = 0.0;
            for x in [-1.0, -0.5, 0.5, 1.0] {
                let cache = layer.forward_cached(&[x]);
                let target = 2.0 * x;
                let err = cache.output[0] - target;
                loss += err * err;
                layer.backward(&cache, &[2.0 * err], 0.05);
            }
            last_loss = loss;
        }
        assert!(last_loss < 1e-6, "loss should converge, got {last_loss}");
        assert!((layer.forward(&[3.0])[0] - 6.0).abs() < 1e-2);
    }

    #[test]
    fn backward_gradient_matches_finite_difference() {
        let layer = Dense::new(2, 2, Activation::Tanh, &mut rng()).expect("valid dims");
        let x = [0.3, -0.7];
        let cache = layer.forward_cached(&x);
        // Loss = sum(outputs); dL/dy = 1.
        let grad_in = layer.clone().backward(&cache, &[1.0, 1.0], 0.0);
        let eps = 1e-6;
        for i in 0..2 {
            let mut xp = x;
            xp[i] += eps;
            let mut xm = x;
            xm[i] -= eps;
            let fp: f64 = layer.forward(&xp).iter().sum();
            let fm: f64 = layer.forward(&xm).iter().sum();
            let numeric = (fp - fm) / (2.0 * eps);
            assert!(
                (grad_in[i] - numeric).abs() < 1e-6,
                "analytic {} vs numeric {numeric}",
                grad_in[i]
            );
        }
    }

    #[test]
    fn clone_roundtrip() {
        let layer = Dense::new(2, 2, Activation::Sigmoid, &mut rng()).expect("valid dims");
        let back = layer.clone();
        assert_eq!(back, layer);
    }
}
