//! Simulated object detectors: the Λ′ models.
//!
//! The paper deploys two pretrained ResNet-152 detectors whose *costs* are
//! what SEO schedules; their *outputs* feed the controller's aggregate
//! feature set Θ′. This module simulates the functional role: a detector
//! converts a range scan into obstacle estimates, and when SEO gates or
//! offloads the model its published output becomes **stale** — exactly the
//! accuracy/energy trade the paper's deadline machinery manages.

use crate::kernel::{Kernel, ScalarKernel};
use seo_sim::sensing::RangeScanner;
use seo_sim::vehicle::VehicleState;
use seo_sim::world::World;
use std::fmt;

/// One detected obstacle estimate in vehicle-relative polar coordinates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Detection {
    /// Estimated distance to the obstacle surface, meters.
    pub distance: f64,
    /// Estimated bearing relative to the heading, radians.
    pub bearing: f64,
}

/// Output of one detector invocation.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DetectionSet {
    /// Detected obstacles, nearest first.
    pub detections: Vec<Detection>,
    /// Age of this output in base periods (0 = fresh this period).
    pub age: u32,
}

impl DetectionSet {
    /// Nearest detection, if any.
    #[must_use]
    pub fn nearest(&self) -> Option<Detection> {
        self.detections.first().copied()
    }

    /// Whether this output was produced in the current period.
    #[must_use]
    pub fn is_fresh(&self) -> bool {
        self.age == 0
    }
}

impl fmt::Display for DetectionSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} detection(s), age {}",
            self.detections.len(),
            self.age
        )
    }
}

/// Reusable workspace for [`ObjectDetector::run_scratch`]: the raw scan and
/// the clustering accumulator, grown once and reused across steps.
#[derive(Debug, Clone, Default)]
pub struct DetectorScratch {
    scan: Vec<f64>,
    cluster: Vec<(usize, f64)>,
}

/// A simulated object detector bound to a forward scanner.
///
/// # Example
///
/// ```
/// use seo_nn::detector::ObjectDetector;
/// use seo_sim::prelude::*;
///
/// let world = World::new(Road::default(), vec![Obstacle::new(20.0, 0.0, 1.5)]);
/// let mut detector = ObjectDetector::with_default_scanner("front-50hz");
/// let out = detector.run(&world, &VehicleState::route_start());
/// assert!(out.nearest().is_some());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ObjectDetector {
    name: String,
    scanner: RangeScanner,
    /// Last published output (persists while the model is gated).
    last_output: DetectionSet,
}

impl ObjectDetector {
    /// Creates a detector with an explicit scanner.
    #[must_use]
    pub fn new(name: impl Into<String>, scanner: RangeScanner) -> Self {
        Self {
            name: name.into(),
            scanner,
            last_output: DetectionSet::default(),
        }
    }

    /// Creates a detector with a 32-ray, 120-degree, 40 m scanner.
    #[must_use]
    pub fn with_default_scanner(name: impl Into<String>) -> Self {
        Self::new(name, RangeScanner::new(32, 120.0_f64.to_radians(), 40.0))
    }

    /// Detector name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Runs a full inference: scans the world, clusters contiguous hit rays
    /// into obstacle estimates, publishes a fresh output, and returns it.
    ///
    /// Allocates per call; hot loops use [`Self::run_scratch`] with a reused
    /// workspace instead.
    pub fn run(&mut self, world: &World, vehicle: &VehicleState) -> DetectionSet {
        let mut scratch = DetectorScratch::default();
        self.run_scratch(world, vehicle, &mut scratch).clone()
    }

    /// Allocation-free [`Self::run`]: the scan and clustering buffers live
    /// in `scratch`, and the published output reuses the detector's own
    /// buffer. Returns a borrow of the fresh output. Bit-identical to `run`.
    pub fn run_scratch(
        &mut self,
        world: &World,
        vehicle: &VehicleState,
        scratch: &mut DetectorScratch,
    ) -> &DetectionSet {
        self.run_scratch_with::<ScalarKernel>(world, vehicle, scratch)
    }

    /// [`Self::run_scratch`] over an explicit [`Kernel`] backend — the
    /// detector's slot in the kernel-generic inference pipeline. The
    /// simulated detector's scan-and-cluster pipeline contains no dense
    /// kernels today, so every backend runs the identical code; the generic
    /// exists so a learned detector (the paper's ResNet-152 role) drops into
    /// the same seam without touching any caller, exactly like
    /// [`DrivingPolicy::act_scratch_with`](crate::policy::DrivingPolicy::act_scratch_with).
    pub fn run_scratch_with<K: Kernel>(
        &mut self,
        world: &World,
        vehicle: &VehicleState,
        scratch: &mut DetectorScratch,
    ) -> &DetectionSet {
        self.scanner.scan_into(world, vehicle, &mut scratch.scan);
        let max_range = self.scanner.max_range();
        let n = scratch.scan.len();
        let fov = 120.0_f64.to_radians();
        let detections = &mut self.last_output.detections;
        detections.clear();
        scratch.cluster.clear();
        let flush = |cluster: &mut Vec<(usize, f64)>, detections: &mut Vec<Detection>| {
            if cluster.is_empty() {
                return;
            }
            let (min_idx, min_d) = cluster
                .iter()
                .copied()
                .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
                .expect("cluster nonempty");
            let frac = if n == 1 {
                0.5
            } else {
                min_idx as f64 / (n - 1) as f64
            };
            detections.push(Detection {
                distance: min_d,
                bearing: (frac - 0.5) * fov,
            });
            cluster.clear();
        };
        for (i, &d) in scratch.scan.iter().enumerate() {
            if d < max_range * 0.999 {
                scratch.cluster.push((i, d));
            } else {
                flush(&mut scratch.cluster, detections);
            }
        }
        flush(&mut scratch.cluster, detections);
        detections.sort_by(|a, b| {
            a.distance
                .partial_cmp(&b.distance)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        self.last_output.age = 0;
        &self.last_output
    }

    /// Marks one base period passing **without** an inference (the model was
    /// gated or its offload is in flight): the published output ages.
    pub fn skip_period(&mut self) -> DetectionSet {
        self.last_output.age = self.last_output.age.saturating_add(1);
        self.last_output.clone()
    }

    /// The most recently published output (possibly stale).
    #[must_use]
    pub fn last_output(&self) -> &DetectionSet {
        &self.last_output
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seo_sim::world::{Obstacle, Road};

    fn one_obstacle_world() -> World {
        World::new(Road::default(), vec![Obstacle::new(25.0, 0.0, 1.5)])
    }

    #[test]
    fn detects_head_on_obstacle() {
        let mut det = ObjectDetector::with_default_scanner("d");
        let out = det.run(&one_obstacle_world(), &VehicleState::route_start());
        let nearest = out.nearest().expect("should see the obstacle");
        assert!(
            (nearest.distance - 23.5).abs() < 1.0,
            "distance {}",
            nearest.distance
        );
        assert!(nearest.bearing.abs() < 0.15, "bearing {}", nearest.bearing);
        assert!(out.is_fresh());
    }

    #[test]
    fn empty_world_yields_no_detections() {
        let mut det = ObjectDetector::with_default_scanner("d");
        let out = det.run(&World::empty(), &VehicleState::route_start());
        assert!(out.detections.is_empty());
        assert!(out.nearest().is_none());
    }

    #[test]
    fn two_separated_obstacles_yield_two_clusters() {
        let world = World::new(
            Road::default(),
            vec![
                Obstacle::new(20.0, -3.0, 1.0),
                Obstacle::new(20.0, 3.0, 1.0),
            ],
        );
        let mut det = ObjectDetector::with_default_scanner("d");
        let out = det.run(&world, &VehicleState::route_start());
        assert_eq!(out.detections.len(), 2, "{out}");
        // Detections are sorted nearest-first.
        assert!(out.detections[0].distance <= out.detections[1].distance);
    }

    #[test]
    fn skip_period_ages_output() {
        let mut det = ObjectDetector::with_default_scanner("d");
        det.run(&one_obstacle_world(), &VehicleState::route_start());
        assert_eq!(det.last_output().age, 0);
        let aged = det.skip_period();
        assert_eq!(aged.age, 1);
        assert!(!aged.is_fresh());
        det.skip_period();
        assert_eq!(det.last_output().age, 2);
        // Detections persist while stale.
        assert_eq!(det.last_output().detections.len(), 1);
    }

    #[test]
    fn fresh_run_resets_age() {
        let mut det = ObjectDetector::with_default_scanner("d");
        det.run(&one_obstacle_world(), &VehicleState::route_start());
        det.skip_period();
        det.skip_period();
        let out = det.run(&one_obstacle_world(), &VehicleState::route_start());
        assert_eq!(out.age, 0);
    }

    #[test]
    fn detector_tracks_moving_vehicle() {
        let world = one_obstacle_world();
        let mut det = ObjectDetector::with_default_scanner("d");
        let far = det.run(&world, &VehicleState::new(0.0, 0.0, 0.0, 5.0));
        let near = det.run(&world, &VehicleState::new(15.0, 0.0, 0.0, 5.0));
        let (df, dn) = (
            far.nearest().expect("visible").distance,
            near.nearest().expect("visible").distance,
        );
        assert!(dn < df, "approaching should shrink distance: {df} -> {dn}");
    }

    #[test]
    fn display_is_informative() {
        let set = DetectionSet {
            detections: vec![],
            age: 3,
        };
        assert_eq!(set.to_string(), "0 detection(s), age 3");
    }
}
