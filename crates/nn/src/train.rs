//! Trainers: the Cross-Entropy Method for policy search and plain SGD
//! epochs for reconstruction models.
//!
//! The paper trains its controller with RL in CARLA for 2000 episodes. The
//! Cross-Entropy Method (CEM) is a derivative-free policy-search algorithm
//! that fills the same role against `seo-sim` while staying deterministic
//! and fast enough for CI.

use crate::error::NnError;
use rand::Rng;

/// Configuration for [`CemTrainer`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CemConfig {
    /// Candidate parameter vectors sampled per generation.
    pub population: usize,
    /// Top-scoring candidates kept to refit the sampling distribution.
    pub elites: usize,
    /// Initial sampling standard deviation.
    pub initial_std: f64,
    /// Additive noise floor on the std, decayed each generation, which
    /// prevents premature collapse.
    pub extra_std: f64,
    /// Generations over which the extra std decays to zero.
    pub extra_std_decay_generations: usize,
}

impl Default for CemConfig {
    fn default() -> Self {
        Self {
            population: 32,
            elites: 8,
            initial_std: 0.5,
            extra_std: 0.25,
            extra_std_decay_generations: 40,
        }
    }
}

impl CemConfig {
    /// Validates the knobs.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidTraining`] when the population is empty,
    /// there are zero elites, or elites exceed the population.
    pub fn validate(&self) -> Result<(), NnError> {
        if self.population == 0 {
            return Err(NnError::InvalidTraining {
                reason: "population must be positive",
            });
        }
        if self.elites == 0 {
            return Err(NnError::InvalidTraining {
                reason: "elites must be positive",
            });
        }
        if self.elites > self.population {
            return Err(NnError::InvalidTraining {
                reason: "elites cannot exceed population",
            });
        }
        if !(self.initial_std.is_finite() && self.initial_std > 0.0) {
            return Err(NnError::InvalidTraining {
                reason: "initial_std must be positive",
            });
        }
        Ok(())
    }
}

/// Progress report for one CEM generation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Generation {
    /// Generation index (0-based).
    pub index: usize,
    /// Best candidate score this generation.
    pub best_score: f64,
    /// Mean score over the elite set.
    pub elite_mean: f64,
}

/// Derivative-free optimizer over flat parameter vectors.
///
/// # Example
///
/// ```
/// use seo_nn::train::{CemConfig, CemTrainer};
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// // Maximize -(x-3)^2: optimum at x = 3.
/// let mut rng = StdRng::seed_from_u64(1);
/// let mut trainer = CemTrainer::new(vec![0.0], CemConfig::default())?;
/// for _ in 0..60 {
///     trainer.step(|p| -(p[0] - 3.0).powi(2), &mut rng);
/// }
/// assert!((trainer.mean()[0] - 3.0).abs() < 0.1);
/// # Ok::<(), seo_nn::NnError>(())
/// ```
#[derive(Debug, Clone)]
pub struct CemTrainer {
    mean: Vec<f64>,
    std: Vec<f64>,
    config: CemConfig,
    generation: usize,
    best_score: f64,
    best_params: Vec<f64>,
}

impl CemTrainer {
    /// Creates a trainer centred on `initial_mean`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidTraining`] if the config is invalid or the
    /// parameter vector is empty.
    pub fn new(initial_mean: Vec<f64>, config: CemConfig) -> Result<Self, NnError> {
        config.validate()?;
        if initial_mean.is_empty() {
            return Err(NnError::InvalidTraining {
                reason: "parameter vector must be non-empty",
            });
        }
        let dim = initial_mean.len();
        Ok(Self {
            mean: initial_mean.clone(),
            std: vec![config.initial_std; dim],
            config,
            generation: 0,
            best_score: f64::NEG_INFINITY,
            best_params: initial_mean,
        })
    }

    /// Current distribution mean.
    #[must_use]
    pub fn mean(&self) -> &[f64] {
        &self.mean
    }

    /// Best-scoring parameters seen so far.
    #[must_use]
    pub fn best_params(&self) -> &[f64] {
        &self.best_params
    }

    /// Best score seen so far (`-inf` before the first step).
    #[must_use]
    pub fn best_score(&self) -> f64 {
        self.best_score
    }

    /// Completed generations.
    #[must_use]
    pub fn generation(&self) -> usize {
        self.generation
    }

    /// Runs one generation: sample, score with `objective` (higher is
    /// better), and refit mean/std on the elites.
    pub fn step<R, F>(&mut self, mut objective: F, rng: &mut R) -> Generation
    where
        R: Rng,
        F: FnMut(&[f64]) -> f64,
    {
        let decay =
            1.0 - (self.generation as f64 / self.config.extra_std_decay_generations.max(1) as f64);
        let extra = (self.config.extra_std * decay.max(0.0)).powi(2);
        let dim = self.mean.len();

        let mut scored: Vec<(f64, Vec<f64>)> = (0..self.config.population)
            .map(|_| {
                let candidate: Vec<f64> = (0..dim)
                    .map(|i| {
                        let sigma = (self.std[i].powi(2) + extra).sqrt();
                        self.mean[i] + sigma * gaussian(rng)
                    })
                    .collect();
                let score = objective(&candidate);
                (score, candidate)
            })
            .collect();

        scored.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));
        if scored[0].0 > self.best_score {
            self.best_score = scored[0].0;
            self.best_params = scored[0].1.clone();
        }
        let elites = &scored[..self.config.elites];

        // Refit mean and std to the elite set.
        for i in 0..dim {
            let m = elites.iter().map(|(_, p)| p[i]).sum::<f64>() / elites.len() as f64;
            let var =
                elites.iter().map(|(_, p)| (p[i] - m).powi(2)).sum::<f64>() / elites.len() as f64;
            self.mean[i] = m;
            self.std[i] = var.sqrt().max(1e-6);
        }

        let report = Generation {
            index: self.generation,
            best_score: scored[0].0,
            elite_mean: elites.iter().map(|(s, _)| s).sum::<f64>() / elites.len() as f64,
        };
        self.generation += 1;
        report
    }
}

/// One epoch of SGD over a supervised dataset; returns the mean loss.
///
/// Generic over the model's train-step so both [`crate::mlp::Mlp`] and
/// [`crate::autoencoder::Autoencoder`] reuse it.
pub fn sgd_epoch<F>(samples: &[(Vec<f64>, Vec<f64>)], mut step: F) -> f64
where
    F: FnMut(&[f64], &[f64]) -> f64,
{
    if samples.is_empty() {
        return 0.0;
    }
    let total: f64 = samples.iter().map(|(x, t)| step(x, t)).sum();
    total / samples.len() as f64
}

/// Standard normal sample via Box–Muller.
fn gaussian<R: Rng>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn config_validation() {
        assert!(CemConfig::default().validate().is_ok());
        assert!(CemConfig {
            population: 0,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(CemConfig {
            elites: 0,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(CemConfig {
            elites: 64,
            population: 32,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(CemConfig {
            initial_std: 0.0,
            ..Default::default()
        }
        .validate()
        .is_err());
    }

    #[test]
    fn empty_params_rejected() {
        assert!(CemTrainer::new(vec![], CemConfig::default()).is_err());
    }

    #[test]
    fn converges_on_quadratic_bowl() {
        let mut rng = StdRng::seed_from_u64(3);
        let target = [1.5, -2.0, 0.5];
        let mut trainer = CemTrainer::new(vec![0.0; 3], CemConfig::default()).expect("valid");
        for _ in 0..80 {
            trainer.step(
                |p| {
                    -p.iter()
                        .zip(&target)
                        .map(|(a, b)| (a - b).powi(2))
                        .sum::<f64>()
                },
                &mut rng,
            );
        }
        for (m, t) in trainer.mean().iter().zip(&target) {
            assert!((m - t).abs() < 0.15, "mean {m} far from target {t}");
        }
        assert!(trainer.best_score() > -0.05);
        assert_eq!(trainer.generation(), 80);
    }

    #[test]
    fn best_params_tracks_maximum() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut trainer = CemTrainer::new(vec![0.0], CemConfig::default()).expect("valid");
        let mut reported_best = f64::NEG_INFINITY;
        for _ in 0..20 {
            let g = trainer.step(|p| -(p[0] - 1.0).powi(2), &mut rng);
            reported_best = reported_best.max(g.best_score);
        }
        assert_eq!(trainer.best_score(), reported_best);
        let replay = -(trainer.best_params()[0] - 1.0).powi(2);
        assert!((replay - trainer.best_score()).abs() < 1e-12);
    }

    #[test]
    fn generation_report_orders_scores() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut trainer = CemTrainer::new(vec![0.0; 2], CemConfig::default()).expect("valid");
        let g = trainer.step(|p| -p.iter().map(|v| v * v).sum::<f64>(), &mut rng);
        assert!(
            g.best_score >= g.elite_mean,
            "best {} < elite mean {}",
            g.best_score,
            g.elite_mean
        );
        assert_eq!(g.index, 0);
    }

    #[test]
    fn sgd_epoch_averages_losses() {
        let samples = vec![(vec![1.0], vec![1.0]), (vec![2.0], vec![2.0])];
        let loss = sgd_epoch(&samples, |x, t| (x[0] - t[0]).abs() + 1.0);
        assert!((loss - 1.0).abs() < 1e-12);
        assert_eq!(sgd_epoch(&[], |_, _| 1.0), 0.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut trainer = CemTrainer::new(vec![0.0; 2], CemConfig::default()).expect("valid");
            for _ in 0..10 {
                trainer.step(|p| -(p[0].powi(2) + p[1].powi(2)), &mut rng);
            }
            trainer.mean().to_vec()
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }
}
