//! Error type for the neural network substrate.

use std::error::Error;
use std::fmt;

/// Errors raised while building or training networks.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum NnError {
    /// A layer or network was given inconsistent dimensions.
    ShapeMismatch {
        /// What was being constructed or applied.
        context: &'static str,
        /// Expected dimension.
        expected: usize,
        /// Actual dimension.
        actual: usize,
    },
    /// A network topology had fewer than two layer sizes.
    TopologyTooSmall,
    /// Training was configured with an empty population or zero elites.
    InvalidTraining {
        /// Description of the broken knob.
        reason: &'static str,
    },
}

impl fmt::Display for NnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::ShapeMismatch {
                context,
                expected,
                actual,
            } => {
                write!(
                    f,
                    "shape mismatch in {context}: expected {expected}, got {actual}"
                )
            }
            Self::TopologyTooSmall => {
                write!(
                    f,
                    "network topology needs at least an input and an output size"
                )
            }
            Self::InvalidTraining { reason } => write!(f, "invalid training config: {reason}"),
        }
    }
}

impl Error for NnError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = NnError::ShapeMismatch {
            context: "forward",
            expected: 4,
            actual: 3,
        };
        assert!(e.to_string().contains("expected 4"));
        assert!(NnError::TopologyTooSmall.to_string().contains("topology"));
        assert!(NnError::InvalidTraining { reason: "x" }
            .to_string()
            .contains("x"));
    }
}
