//! Multi-layer perceptrons: stacked [`Dense`] layers with a shared API for
//! inference, backprop training, and flat-parameter access (used by the
//! Cross-Entropy Method trainer).

use crate::error::NnError;
use crate::kernel::{Kernel, ScalarKernel};
use crate::layer::{Activation, Dense, LayerCache};
use rand::Rng;
use std::fmt;

/// A feed-forward network of dense layers.
///
/// All hidden layers share one activation; the output layer has its own
/// (typically [`Activation::Identity`] for regression heads or
/// [`Activation::Tanh`] for bounded control heads).
#[derive(Debug, Clone, PartialEq)]
pub struct Mlp {
    layers: Vec<Dense>,
}

/// Reusable inference workspace: two ping-pong activation buffers sized to
/// the widest layer a network presents.
///
/// Construct once (per thread / per episode runner), then every
/// [`Mlp::forward_into`] call runs without touching the heap — the buffers
/// are grown to their high-water mark on first use and reused afterwards.
/// One scratch can serve many networks (e.g. a policy and an autoencoder)
/// as long as calls do not overlap.
#[derive(Debug, Clone, Default)]
pub struct InferenceScratch {
    /// Buffer holding the current activation (output lands here).
    pub(crate) cur: Vec<f64>,
    /// Buffer the next layer writes into before the ping-pong swap.
    pub(crate) nxt: Vec<f64>,
}

impl InferenceScratch {
    /// Creates an empty scratch; buffers grow on first use.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a scratch pre-sized for `net` so the first forward pass is
    /// already allocation-free.
    #[must_use]
    pub fn for_mlp(net: &Mlp) -> Self {
        let width = net.max_width();
        Self {
            cur: Vec::with_capacity(width),
            nxt: Vec::with_capacity(width),
        }
    }

    /// Pre-reserves both buffers for layers up to `width` wide.
    pub fn reserve(&mut self, width: usize) {
        if self.cur.capacity() < width {
            self.cur.reserve(width - self.cur.len());
        }
        if self.nxt.capacity() < width {
            self.nxt.reserve(width - self.nxt.len());
        }
    }

    /// The output slice of the most recent forward pass.
    #[must_use]
    pub fn output(&self) -> &[f64] {
        &self.cur
    }
}

impl Mlp {
    /// Builds an MLP with the given layer sizes, e.g. `&[8, 16, 16, 2]`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::TopologyTooSmall`] for fewer than two sizes and
    /// [`NnError::ShapeMismatch`] if any size is zero.
    pub fn new<R: Rng>(
        sizes: &[usize],
        hidden: Activation,
        output: Activation,
        rng: &mut R,
    ) -> Result<Self, NnError> {
        if sizes.len() < 2 {
            return Err(NnError::TopologyTooSmall);
        }
        let mut layers = Vec::with_capacity(sizes.len() - 1);
        for (i, pair) in sizes.windows(2).enumerate() {
            let activation = if i + 2 == sizes.len() { output } else { hidden };
            layers.push(Dense::new(pair[0], pair[1], activation, rng)?);
        }
        Ok(Self { layers })
    }

    /// Input dimension.
    #[must_use]
    pub fn input_dim(&self) -> usize {
        self.layers[0].input_dim()
    }

    /// Output dimension.
    #[must_use]
    pub fn output_dim(&self) -> usize {
        self.layers.last().expect("mlp has layers").output_dim()
    }

    /// Total trainable parameter count.
    #[must_use]
    pub fn param_count(&self) -> usize {
        self.layers.iter().map(Dense::param_count).sum()
    }

    /// Number of layers.
    #[must_use]
    pub fn layer_count(&self) -> usize {
        self.layers.len()
    }

    /// The widest activation any layer produces or consumes (sizes the
    /// scratch buffers).
    #[must_use]
    pub fn max_width(&self) -> usize {
        self.layers
            .iter()
            .map(|l| l.input_dim().max(l.output_dim()))
            .max()
            .unwrap_or(0)
    }

    /// Forward inference.
    ///
    /// Allocates the output; control-loop hot paths use
    /// [`Self::forward_into`] with a reused [`InferenceScratch`] instead.
    ///
    /// # Panics
    ///
    /// Panics if `input.len() != input_dim()`.
    #[must_use]
    pub fn forward(&self, input: &[f64]) -> Vec<f64> {
        let mut scratch = InferenceScratch::for_mlp(self);
        self.forward_into(input, &mut scratch).to_vec()
    }

    /// Forward inference entirely inside `scratch`, returning the output
    /// slice. After the scratch buffers reach their high-water mark this
    /// performs **zero heap allocations** per call — the property the SEO
    /// runtime loop relies on for its per-control-step inference.
    ///
    /// Produces bit-identical results to [`Self::forward`] (same operations
    /// in the same order; only the storage differs).
    ///
    /// # Panics
    ///
    /// Panics if `input.len() != input_dim()`.
    pub fn forward_into<'s>(&self, input: &[f64], scratch: &'s mut InferenceScratch) -> &'s [f64] {
        self.forward_into_with::<ScalarKernel>(input, scratch)
    }

    /// [`Self::forward_into`] over an explicit [`Kernel`] backend. All
    /// backends produce bit-identical output by contract (see
    /// [`crate::kernel`]); the backend only changes how fast each dense
    /// layer's fused matvec + bias + activation runs.
    ///
    /// # Panics
    ///
    /// Panics if `input.len() != input_dim()`.
    pub fn forward_into_with<'s, K: Kernel>(
        &self,
        input: &[f64],
        scratch: &'s mut InferenceScratch,
    ) -> &'s [f64] {
        assert_eq!(
            input.len(),
            self.input_dim(),
            "mlp input dimension mismatch"
        );
        scratch.cur.clear();
        scratch.cur.extend_from_slice(input);
        self.forward_from_cur_with::<K>(scratch)
    }

    /// Continues a forward pass from whatever activation is already in
    /// `scratch.cur` — lets same-crate callers chain networks (encoder into
    /// decoder) without copying the intermediate code.
    ///
    /// # Panics
    ///
    /// Panics if the resident activation length differs from `input_dim()`.
    pub(crate) fn forward_from_cur_with<'s, K: Kernel>(
        &self,
        scratch: &'s mut InferenceScratch,
    ) -> &'s [f64] {
        assert_eq!(
            scratch.cur.len(),
            self.input_dim(),
            "mlp input dimension mismatch"
        );
        for layer in &self.layers {
            scratch.nxt.resize(layer.output_dim(), 0.0);
            layer.forward_into_with::<K>(&scratch.cur, &mut scratch.nxt);
            std::mem::swap(&mut scratch.cur, &mut scratch.nxt);
        }
        &scratch.cur
    }

    /// One SGD step on the squared error against `target`; returns the MSE
    /// *before* the update.
    ///
    /// # Panics
    ///
    /// Panics if `input`/`target` dimensions do not match the network.
    pub fn train_step(&mut self, input: &[f64], target: &[f64], lr: f64) -> f64 {
        assert_eq!(
            target.len(),
            self.output_dim(),
            "mlp target dimension mismatch"
        );
        let mut loss = 0.0;
        let n = target.len() as f64;
        self.backprop_step(input, lr, |output| {
            loss = output
                .iter()
                .zip(target)
                .map(|(&y, &t)| (y - t).powi(2))
                .sum::<f64>()
                / n;
            output
                .iter()
                .zip(target)
                .map(|(&y, &t)| 2.0 * (y - t) / n)
                .collect()
        });
        loss
    }

    /// Generic backprop step: runs a cached forward pass, asks `grad_of` for
    /// the loss gradient at the output, applies one SGD update of size `lr`,
    /// and returns the loss gradient with respect to the **input** — which
    /// lets callers chain networks (e.g. decoder into encoder).
    ///
    /// # Panics
    ///
    /// Panics if `input` or the gradient produced by `grad_of` has the wrong
    /// dimension.
    pub fn backprop_step<F>(&mut self, input: &[f64], lr: f64, grad_of: F) -> Vec<f64>
    where
        F: FnOnce(&[f64]) -> Vec<f64>,
    {
        assert_eq!(
            input.len(),
            self.input_dim(),
            "mlp input dimension mismatch"
        );
        let mut caches: Vec<LayerCache> = Vec::with_capacity(self.layers.len());
        let mut x = input.to_vec();
        for layer in &self.layers {
            let cache = layer.forward_cached(&x);
            x = cache.output.clone();
            caches.push(cache);
        }
        let mut grad = grad_of(&x);
        assert_eq!(
            grad.len(),
            self.output_dim(),
            "mlp output gradient dimension mismatch"
        );
        for (layer, cache) in self.layers.iter_mut().zip(&caches).rev() {
            grad = layer.backward(cache, &grad, lr);
        }
        grad
    }

    /// Copies all parameters into a fresh flat vector
    /// (layer order, weights row-major then biases).
    #[must_use]
    pub fn to_params(&self) -> Vec<f64> {
        let mut out = vec![0.0; self.param_count()];
        let mut offset = 0;
        for layer in &self.layers {
            offset += layer.write_params(&mut out[offset..]);
        }
        out
    }

    /// Loads parameters from a flat vector (inverse of [`Self::to_params`]).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] if `params.len()` differs from
    /// [`Self::param_count`].
    pub fn set_params(&mut self, params: &[f64]) -> Result<(), NnError> {
        if params.len() != self.param_count() {
            return Err(NnError::ShapeMismatch {
                context: "set_params",
                expected: self.param_count(),
                actual: params.len(),
            });
        }
        let mut offset = 0;
        for layer in &mut self.layers {
            offset += layer.read_params(&params[offset..]);
        }
        Ok(())
    }
}

impl fmt::Display for Mlp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "mlp {}->{} ({} layers, {} params)",
            self.input_dim(),
            self.output_dim(),
            self.layer_count(),
            self.param_count()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    #[test]
    fn topology_and_counts() {
        let net = Mlp::new(
            &[4, 8, 2],
            Activation::Tanh,
            Activation::Identity,
            &mut rng(),
        )
        .expect("valid");
        assert_eq!(net.input_dim(), 4);
        assert_eq!(net.output_dim(), 2);
        assert_eq!(net.layer_count(), 2);
        assert_eq!(net.param_count(), 4 * 8 + 8 + 8 * 2 + 2);
    }

    #[test]
    fn too_small_topology_rejected() {
        assert_eq!(
            Mlp::new(&[4], Activation::Tanh, Activation::Identity, &mut rng()).unwrap_err(),
            NnError::TopologyTooSmall
        );
        assert!(Mlp::new(&[], Activation::Tanh, Activation::Identity, &mut rng()).is_err());
    }

    #[test]
    fn zero_layer_size_rejected() {
        assert!(Mlp::new(
            &[4, 0, 2],
            Activation::Tanh,
            Activation::Identity,
            &mut rng()
        )
        .is_err());
    }

    #[test]
    fn forward_is_deterministic_and_bounded_with_tanh_head() {
        let net =
            Mlp::new(&[3, 8, 2], Activation::Relu, Activation::Tanh, &mut rng()).expect("valid");
        let out = net.forward(&[0.5, -1.0, 2.0]);
        assert_eq!(out, net.forward(&[0.5, -1.0, 2.0]));
        assert!(out.iter().all(|v| v.abs() <= 1.0));
    }

    #[test]
    fn param_roundtrip_preserves_function() {
        let net = Mlp::new(
            &[5, 7, 3],
            Activation::Tanh,
            Activation::Identity,
            &mut rng(),
        )
        .expect("valid");
        let params = net.to_params();
        let mut other = Mlp::new(
            &[5, 7, 3],
            Activation::Tanh,
            Activation::Identity,
            &mut rng(),
        )
        .expect("valid");
        other.set_params(&params).expect("matching count");
        let x = [0.1, 0.2, 0.3, 0.4, 0.5];
        assert_eq!(net.forward(&x), other.forward(&x));
    }

    #[test]
    fn set_params_rejects_wrong_length() {
        let mut net =
            Mlp::new(&[2, 2], Activation::Tanh, Activation::Identity, &mut rng()).expect("valid");
        let err = net.set_params(&[0.0; 3]).unwrap_err();
        assert!(matches!(
            err,
            NnError::ShapeMismatch {
                context: "set_params",
                ..
            }
        ));
    }

    #[test]
    fn sgd_learns_xor() {
        let mut net = Mlp::new(
            &[2, 8, 1],
            Activation::Tanh,
            Activation::Sigmoid,
            &mut rng(),
        )
        .expect("valid");
        let data = [
            ([0.0, 0.0], [0.0]),
            ([0.0, 1.0], [1.0]),
            ([1.0, 0.0], [1.0]),
            ([1.0, 1.0], [0.0]),
        ];
        for _ in 0..3000 {
            for (x, t) in &data {
                net.train_step(x, t, 0.5);
            }
        }
        for (x, t) in &data {
            let y = net.forward(x)[0];
            assert!(
                (y - t[0]).abs() < 0.2,
                "xor({x:?}) = {y}, expected {}",
                t[0]
            );
        }
    }

    #[test]
    fn train_step_returns_decreasing_loss() {
        let mut net = Mlp::new(
            &[1, 4, 1],
            Activation::Tanh,
            Activation::Identity,
            &mut rng(),
        )
        .expect("valid");
        let first = net.train_step(&[0.5], &[0.3], 0.1);
        let mut last = first;
        for _ in 0..100 {
            last = net.train_step(&[0.5], &[0.3], 0.1);
        }
        assert!(last < first, "loss should shrink: {first} -> {last}");
    }

    #[test]
    fn display_and_clone() {
        let net = Mlp::new(
            &[2, 3, 1],
            Activation::Tanh,
            Activation::Identity,
            &mut rng(),
        )
        .expect("ok");
        assert!(net.to_string().contains("2->1"));
        let back = net.clone();
        assert_eq!(back, net);
    }
}
