//! # seo-nn
//!
//! From-scratch neural network substrate for the SEO reproduction
//! (DAC 2023, arXiv:2302.12493).
//!
//! The paper's evaluation uses three learned components:
//!
//! 1. an **RL agent** (steering + throttle controller) trained for 2000
//!    episodes on a CARLA route;
//! 2. a **variational autoencoder** (from ShieldNN) in the critical subset
//!    Λ″;
//! 3. two **ResNet-152 object detectors** in the optimizable subset Λ′.
//!
//! None of these require GPU-scale networks to reproduce the *scheduling*
//! behaviour SEO studies — they require components with the same roles. This
//! crate provides them, built on a small dependency-free NN stack:
//!
//! * [`tensor`] — dense matrices/vectors with the handful of BLAS-like ops
//!   an MLP needs.
//! * [`kernel`] — pluggable compute backends under every `*_into` hot path:
//!   the [`Kernel`] trait, the scalar reference, and the
//!   blocked/unrolled backend, all bit-identical by contract (the backend
//!   book is `docs/kernels.md`).
//! * [`layer`] / [`mlp`] — fully-connected layers with activations, forward
//!   inference, manual backprop, and flat parameter (de)serialization.
//! * [`train`] — gradient-descent (for the autoencoder) and Cross-Entropy
//!   Method (for the policy) trainers.
//! * [`policy`] — the driving policy: observation featurization, action
//!   decoding, and CEM training against `seo-sim` episodes.
//! * [`autoencoder`] — a ray-scan autoencoder standing in for the ShieldNN
//!   VAE in Λ″.
//! * [`detector`] — simulated object detectors for Λ′, with output staleness
//!   when the model is gated.
//!
//! # Example
//!
//! ```
//! use seo_nn::mlp::Mlp;
//! use seo_nn::layer::Activation;
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! let mut rng = StdRng::seed_from_u64(7);
//! let net = Mlp::new(&[4, 8, 2], Activation::Tanh, Activation::Identity, &mut rng)?;
//! let out = net.forward(&[0.1, -0.2, 0.3, 0.4]);
//! assert_eq!(out.len(), 2);
//! # Ok::<(), seo_nn::NnError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod autoencoder;
pub mod detector;
pub mod error;
pub mod kernel;
pub mod layer;
pub mod mlp;
pub mod policy;
pub mod tensor;
pub mod train;

pub use error::NnError;
pub use kernel::{BlockedKernel, Kernel, KernelBackend, ScalarKernel};
pub use mlp::{InferenceScratch, Mlp};
pub use policy::DrivingPolicy;
