//! Ray-scan autoencoder: the Λ″ feature extractor.
//!
//! The paper reuses ShieldNN's variational autoencoder as the critical-subset
//! model that digests raw sensing into compact features for the controller.
//! This module provides the same component over `seo-sim` ray scans: an
//! encoder/decoder MLP pair trained by reconstruction, whose latent code
//! serves as the Θ″ features in the SEO runtime.

use crate::error::NnError;
use crate::kernel::{Kernel, ScalarKernel};
use crate::layer::Activation;
use crate::mlp::{InferenceScratch, Mlp};
use crate::train::sgd_epoch;
use rand::Rng;

/// An encoder/decoder pair over normalized range scans.
///
/// # Example
///
/// ```
/// use seo_nn::autoencoder::Autoencoder;
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// let mut rng = StdRng::seed_from_u64(3);
/// let ae = Autoencoder::new(16, 4, &mut rng)?;
/// let scan = vec![1.0; 16];
/// assert_eq!(ae.encode(&scan).len(), 4);
/// assert_eq!(ae.reconstruct(&scan).len(), 16);
/// # Ok::<(), seo_nn::NnError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Autoencoder {
    encoder: Mlp,
    decoder: Mlp,
    input_dim: usize,
    latent_dim: usize,
}

impl Autoencoder {
    /// Builds an autoencoder for `input_dim`-ray scans with a
    /// `latent_dim`-dimensional code.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] when either dimension is zero.
    pub fn new<R: Rng>(input_dim: usize, latent_dim: usize, rng: &mut R) -> Result<Self, NnError> {
        let hidden = (input_dim * 2).max(8);
        let encoder = Mlp::new(
            &[input_dim, hidden, latent_dim],
            Activation::Tanh,
            Activation::Tanh,
            rng,
        )?;
        let decoder = Mlp::new(
            &[latent_dim, hidden, input_dim],
            Activation::Tanh,
            Activation::Sigmoid,
            rng,
        )?;
        Ok(Self {
            encoder,
            decoder,
            input_dim,
            latent_dim,
        })
    }

    /// Scan dimension.
    #[must_use]
    pub fn input_dim(&self) -> usize {
        self.input_dim
    }

    /// Latent code dimension.
    #[must_use]
    pub fn latent_dim(&self) -> usize {
        self.latent_dim
    }

    /// Encodes a normalized scan into its latent features.
    ///
    /// # Panics
    ///
    /// Panics if `scan.len() != input_dim()`.
    #[must_use]
    pub fn encode(&self, scan: &[f64]) -> Vec<f64> {
        self.encoder.forward(scan)
    }

    /// Decodes a latent code back into scan space.
    ///
    /// # Panics
    ///
    /// Panics if `code.len() != latent_dim()`.
    #[must_use]
    pub fn decode(&self, code: &[f64]) -> Vec<f64> {
        self.decoder.forward(code)
    }

    /// Encode-then-decode round trip.
    #[must_use]
    pub fn reconstruct(&self, scan: &[f64]) -> Vec<f64> {
        self.decode(&self.encode(scan))
    }

    /// Allocation-free [`Self::encode`]: the latent code is produced inside
    /// the reused `scratch` workspace. Bit-identical to `encode`.
    ///
    /// # Panics
    ///
    /// Panics if `scan.len() != input_dim()`.
    pub fn encode_into<'s>(&self, scan: &[f64], scratch: &'s mut InferenceScratch) -> &'s [f64] {
        self.encode_into_with::<ScalarKernel>(scan, scratch)
    }

    /// [`Self::encode_into`] over an explicit [`Kernel`] backend
    /// (bit-identical across backends by contract).
    ///
    /// # Panics
    ///
    /// Panics if `scan.len() != input_dim()`.
    pub fn encode_into_with<'s, K: Kernel>(
        &self,
        scan: &[f64],
        scratch: &'s mut InferenceScratch,
    ) -> &'s [f64] {
        self.encoder.forward_into_with::<K>(scan, scratch)
    }

    /// Allocation-free [`Self::reconstruct`]: encoder and decoder run
    /// back-to-back inside the same scratch, chaining through the resident
    /// latent code without copying it. Bit-identical to `reconstruct`.
    ///
    /// # Panics
    ///
    /// Panics if `scan.len() != input_dim()`.
    pub fn reconstruct_into<'s>(
        &self,
        scan: &[f64],
        scratch: &'s mut InferenceScratch,
    ) -> &'s [f64] {
        self.reconstruct_into_with::<ScalarKernel>(scan, scratch)
    }

    /// [`Self::reconstruct_into`] over an explicit [`Kernel`] backend
    /// (bit-identical across backends by contract).
    ///
    /// # Panics
    ///
    /// Panics if `scan.len() != input_dim()`.
    pub fn reconstruct_into_with<'s, K: Kernel>(
        &self,
        scan: &[f64],
        scratch: &'s mut InferenceScratch,
    ) -> &'s [f64] {
        let _ = self.encoder.forward_into_with::<K>(scan, scratch);
        self.decoder.forward_from_cur_with::<K>(scratch)
    }

    /// Mean squared reconstruction error on one scan.
    #[must_use]
    pub fn reconstruction_error(&self, scan: &[f64]) -> f64 {
        crate::tensor::mse(&self.reconstruct(scan), scan)
    }

    /// Allocation-free [`Self::reconstruction_error`].
    ///
    /// # Panics
    ///
    /// Panics if `scan.len() != input_dim()`.
    pub fn reconstruction_error_scratch(
        &self,
        scan: &[f64],
        scratch: &mut InferenceScratch,
    ) -> f64 {
        crate::tensor::mse(self.reconstruct_into(scan, scratch), scan)
    }

    /// One epoch of end-to-end reconstruction SGD over `scans`; returns the
    /// mean loss before each step.
    ///
    /// Gradients flow through the decoder into the encoder via
    /// [`Mlp::backprop_step`], so both halves train jointly.
    pub fn train_epoch(&mut self, scans: &[Vec<f64>], lr: f64) -> f64 {
        let samples: Vec<(Vec<f64>, Vec<f64>)> =
            scans.iter().map(|s| (s.clone(), s.clone())).collect();
        let encoder = &mut self.encoder;
        let decoder = &mut self.decoder;
        sgd_epoch(&samples, |x, t| {
            let mut loss = 0.0;
            let n = t.len() as f64;
            encoder.backprop_step(x, lr, |code| {
                decoder.backprop_step(code, lr, |recon| {
                    loss = recon
                        .iter()
                        .zip(t)
                        .map(|(&y, &tv)| (y - tv).powi(2))
                        .sum::<f64>()
                        / n;
                    recon
                        .iter()
                        .zip(t)
                        .map(|(&y, &tv)| 2.0 * (y - tv) / n)
                        .collect()
                })
            });
            loss
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use seo_sim::prelude::*;
    use seo_sim::sensing::RangeScanner;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(17)
    }

    #[test]
    fn shapes_are_consistent() {
        let ae = Autoencoder::new(32, 8, &mut rng()).expect("valid dims");
        assert_eq!(ae.input_dim(), 32);
        assert_eq!(ae.latent_dim(), 8);
        let scan = vec![0.5; 32];
        assert_eq!(ae.encode(&scan).len(), 8);
        assert_eq!(ae.reconstruct(&scan).len(), 32);
    }

    #[test]
    fn zero_dims_rejected() {
        assert!(Autoencoder::new(0, 4, &mut rng()).is_err());
        assert!(Autoencoder::new(8, 0, &mut rng()).is_err());
    }

    #[test]
    fn outputs_bounded_by_sigmoid_head() {
        let ae = Autoencoder::new(16, 4, &mut rng()).expect("valid dims");
        let recon = ae.reconstruct(&[0.9; 16]);
        assert!(recon.iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn training_reduces_reconstruction_error() {
        let mut ae = Autoencoder::new(8, 4, &mut rng()).expect("valid dims");
        // Two distinct prototypical scans (free road vs obstacle ahead),
        // kept away from the sigmoid asymptotes.
        let scans = vec![
            vec![0.9, 0.9, 0.9, 0.9, 0.9, 0.9, 0.9, 0.9],
            vec![0.9, 0.9, 0.3, 0.2, 0.2, 0.3, 0.9, 0.9],
        ];
        let before: f64 = scans.iter().map(|s| ae.reconstruction_error(s)).sum();
        for _ in 0..500 {
            ae.train_epoch(&scans, 0.2);
        }
        let after: f64 = scans.iter().map(|s| ae.reconstruction_error(s)).sum();
        assert!(
            after < before,
            "reconstruction should improve: {before} -> {after}"
        );
        assert!(after < 0.05, "reconstruction should become good: {after}");
    }

    #[test]
    fn encodes_real_scans_from_simulator() {
        let world = ScenarioConfig::new(3).with_seed(5).generate();
        let scanner = RangeScanner::new(16, 120.0_f64.to_radians(), 40.0);
        let scan = scanner.scan_normalized(&world, &VehicleState::new(70.0, 0.0, 0.0, 8.0));
        let ae = Autoencoder::new(16, 4, &mut rng()).expect("valid dims");
        let code = ae.encode(&scan);
        assert_eq!(code.len(), 4);
        assert!(code.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn different_scans_produce_different_codes() {
        let ae = Autoencoder::new(8, 3, &mut rng()).expect("valid dims");
        let a = ae.encode(&[1.0; 8]);
        let b = ae.encode(&[0.1; 8]);
        assert_ne!(a, b);
    }

    #[test]
    fn train_epoch_on_empty_dataset_is_zero() {
        let mut ae = Autoencoder::new(4, 2, &mut rng()).expect("valid dims");
        assert_eq!(ae.train_epoch(&[], 0.1), 0.0);
    }
}
