//! Minimal dense linear algebra for MLP workloads.
//!
//! A deliberately small surface: row-major [`Matrix`] with matrix–vector
//! products, outer products, and elementwise helpers — exactly what forward
//! inference and backprop over dense layers need.
//!
//! The compute itself lives one layer down in [`crate::kernel`]: the
//! `*_with::<K>` variants here are generic over a [`Kernel`] backend, and the
//! plain forms are shorthands for the scalar reference backend.
use crate::kernel::{Kernel, ScalarKernel};
use std::fmt;

/// A row-major dense matrix of `f64`.
///
/// # Example
///
/// ```
/// use seo_nn::tensor::Matrix;
///
/// let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
/// assert_eq!(m.matvec(&[1.0, 1.0]), vec![3.0, 7.0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a zero matrix.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    #[must_use]
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be positive");
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix from explicit row slices.
    ///
    /// # Panics
    ///
    /// Panics if rows are empty or ragged.
    #[must_use]
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        assert!(!rows.is_empty(), "need at least one row");
        let cols = rows[0].len();
        assert!(cols > 0, "need at least one column");
        let mut data = Vec::with_capacity(rows.len() * cols);
        for row in rows {
            assert_eq!(row.len(), cols, "ragged rows");
            data.extend_from_slice(row);
        }
        Self {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Creates a matrix from a flat row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    #[must_use]
    pub fn from_flat(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "flat buffer length mismatch");
        assert!(rows > 0 && cols > 0, "matrix dimensions must be positive");
        Self { rows, cols, data }
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrow of the flat row-major data.
    #[must_use]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable borrow of the flat row-major data.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Element access.
    ///
    /// # Panics
    ///
    /// Panics when out of bounds.
    #[must_use]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r}, {c}) out of bounds"
        );
        self.data[r * self.cols + c]
    }

    /// Element assignment.
    ///
    /// # Panics
    ///
    /// Panics when out of bounds.
    pub fn set(&mut self, r: usize, c: usize, value: f64) {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r}, {c}) out of bounds"
        );
        self.data[r * self.cols + c] = value;
    }

    /// Matrix–vector product `M * x`.
    ///
    /// Allocates the result; inference hot paths use [`Self::matvec_into`]
    /// with a reused buffer instead.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != cols`.
    #[must_use]
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; self.rows];
        self.matvec_into(x, &mut out);
        out
    }

    /// Matrix–vector product `M * x` written into a caller-provided buffer —
    /// the allocation-free core of forward inference.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != cols` or `out.len() != rows`.
    pub fn matvec_into(&self, x: &[f64], out: &mut [f64]) {
        self.matvec_into_with::<ScalarKernel>(x, out);
    }

    /// [`Self::matvec_into`] over an explicit [`Kernel`] backend. All
    /// backends are bit-identical by contract (see [`crate::kernel`]); the
    /// choice only affects speed.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != cols` or `out.len() != rows`.
    pub fn matvec_into_with<K: Kernel>(&self, x: &[f64], out: &mut [f64]) {
        assert_eq!(x.len(), self.cols, "matvec dimension mismatch");
        assert_eq!(out.len(), self.rows, "matvec output dimension mismatch");
        K::matvec(self.cols, &self.data, x, out);
    }

    /// Transposed matrix–vector product `Mᵀ * y`.
    ///
    /// Allocates the result; backprop hot paths can use
    /// [`Self::matvec_transposed_into`] with a reused buffer.
    ///
    /// # Panics
    ///
    /// Panics if `y.len() != rows`.
    #[must_use]
    pub fn matvec_transposed(&self, y: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; self.cols];
        self.matvec_transposed_into(y, &mut out);
        out
    }

    /// Transposed matrix–vector product `Mᵀ * y` written into a
    /// caller-provided buffer.
    ///
    /// # Panics
    ///
    /// Panics if `y.len() != rows` or `out.len() != cols`.
    pub fn matvec_transposed_into(&self, y: &[f64], out: &mut [f64]) {
        assert_eq!(y.len(), self.rows, "matvec_transposed dimension mismatch");
        assert_eq!(
            out.len(),
            self.cols,
            "matvec_transposed output dimension mismatch"
        );
        out.fill(0.0);
        for (row, &yi) in self.data.chunks_exact(self.cols).zip(y) {
            for (o, &m) in out.iter_mut().zip(row) {
                *o += m * yi;
            }
        }
    }

    /// Accumulates the outer product `alpha * y xᵀ` into the matrix
    /// (the weight-gradient update of a dense layer).
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn add_outer(&mut self, y: &[f64], x: &[f64], alpha: f64) {
        assert_eq!(y.len(), self.rows, "outer product row mismatch");
        assert_eq!(x.len(), self.cols, "outer product col mismatch");
        for (row, &yi) in self.data.chunks_exact_mut(self.cols).zip(y) {
            for (m, &xj) in row.iter_mut().zip(x) {
                *m += alpha * yi * xj;
            }
        }
    }

    /// Frobenius norm.
    #[must_use]
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{} matrix", self.rows, self.cols)
    }
}

/// Dot product of two equal-length slices.
///
/// # Panics
///
/// Panics on length mismatch.
#[must_use]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot length mismatch");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// In-place `a += alpha * b`.
///
/// # Panics
///
/// Panics on length mismatch.
pub fn axpy(a: &mut [f64], b: &[f64], alpha: f64) {
    axpy_with::<ScalarKernel>(a, b, alpha);
}

/// [`axpy`] over an explicit [`Kernel`] backend (bit-identical across
/// backends by contract).
///
/// # Panics
///
/// Panics on length mismatch.
pub fn axpy_with<K: Kernel>(a: &mut [f64], b: &[f64], alpha: f64) {
    assert_eq!(a.len(), b.len(), "axpy length mismatch");
    K::axpy(a, b, alpha);
}

/// Mean squared error between two equal-length slices.
///
/// # Panics
///
/// Panics on length mismatch or empty slices.
#[must_use]
pub fn mse(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "mse length mismatch");
    assert!(!a.is_empty(), "mse of empty slices");
    a.iter().zip(b).map(|(x, y)| (x - y).powi(2)).sum::<f64>() / a.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matvec_identity() {
        let m = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]);
        assert_eq!(m.matvec(&[3.0, 4.0]), vec![3.0, 4.0]);
    }

    #[test]
    fn matvec_rectangular() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(m.matvec(&[1.0, 1.0, 1.0]), vec![6.0, 15.0]);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
    }

    #[test]
    fn transposed_matvec_matches_manual() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let out = m.matvec_transposed(&[1.0, 0.0, 1.0]);
        assert_eq!(out, vec![6.0, 8.0]);
    }

    #[test]
    fn add_outer_accumulates() {
        let mut m = Matrix::zeros(2, 3);
        m.add_outer(&[1.0, 2.0], &[1.0, 0.0, -1.0], 0.5);
        assert_eq!(m.get(0, 0), 0.5);
        assert_eq!(m.get(0, 2), -0.5);
        assert_eq!(m.get(1, 0), 1.0);
        m.add_outer(&[1.0, 2.0], &[1.0, 0.0, -1.0], 0.5);
        assert_eq!(m.get(1, 0), 2.0);
    }

    #[test]
    fn get_set_roundtrip() {
        let mut m = Matrix::zeros(2, 2);
        m.set(1, 0, 7.0);
        assert_eq!(m.get(1, 0), 7.0);
        assert_eq!(m.as_slice()[2], 7.0);
        m.as_mut_slice()[3] = 9.0;
        assert_eq!(m.get(1, 1), 9.0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn get_out_of_bounds_panics() {
        let _ = Matrix::zeros(2, 2).get(2, 0);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn matvec_wrong_len_panics() {
        let _ = Matrix::zeros(2, 3).matvec(&[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_panic() {
        let _ = Matrix::from_rows(&[&[1.0, 2.0], &[3.0]]);
    }

    #[test]
    fn from_flat_roundtrip() {
        let m = Matrix::from_flat(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(m.get(0, 1), 2.0);
        assert_eq!(m.get(1, 0), 3.0);
    }

    #[test]
    fn frobenius() {
        let m = Matrix::from_rows(&[&[3.0, 0.0], &[0.0, 4.0]]);
        assert!((m.frobenius_norm() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn helper_functions() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        let mut a = vec![1.0, 1.0];
        axpy(&mut a, &[2.0, 4.0], 0.5);
        assert_eq!(a, vec![2.0, 3.0]);
        assert!((mse(&[0.0, 0.0], &[1.0, 1.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn display_and_clone() {
        let m = Matrix::zeros(2, 3);
        assert_eq!(m.to_string(), "2x3 matrix");
        let back = m.clone();
        assert_eq!(back, m);
    }
}
