//! Driving policies: the learned controller π and a deterministic
//! potential-field controller.
//!
//! The paper's controller is an RL agent trained in CARLA for 2000 episodes
//! that outputs steering and throttle. Here the same role is filled by:
//!
//! * [`DrivingPolicy`] — a small MLP over a fixed feature vector, trained
//!   with the Cross-Entropy Method against `seo-sim` episodes via
//!   [`train_driving_policy`]; and
//! * [`PotentialFieldController`] — a deterministic obstacle-repulsion
//!   controller used by the experiment harness when a reproducible,
//!   guaranteed-to-complete agent is preferable to a stochastic training
//!   run (the *scheduling* results SEO reports do not depend on which
//!   competent controller produces `u`).

use crate::error::NnError;
use crate::kernel::{Kernel, ScalarKernel};
use crate::layer::Activation;
use crate::mlp::{InferenceScratch, Mlp};
use crate::train::{CemConfig, CemTrainer, Generation};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use seo_sim::episode::{Episode, EpisodeConfig, EpisodeStatus};
use seo_sim::scenario::ScenarioConfig;
use seo_sim::sensing::RelativeObservation;
use seo_sim::vehicle::{Control, VehicleState};

/// Fixed-size feature vector consumed by the driving policies.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PolicyFeatures {
    /// Lateral offset normalized by half the road width, roughly `[-1, 1]`.
    pub lateral: f64,
    /// Heading angle, radians.
    pub heading: f64,
    /// Speed normalized by a nominal 15 m/s top speed.
    pub speed: f64,
    /// Nearest-obstacle distance clipped to 30 m and normalized to `[0, 1]`
    /// (1 = nothing within range).
    pub obstacle_proximity: f64,
    /// Bearing to the nearest obstacle, radians (0 when none).
    pub obstacle_bearing: f64,
    /// Estimated lateral position of the nearest obstacle's center,
    /// normalized by half the road width (0 when none).
    pub obstacle_lateral: f64,
    /// Route progress in `[0, 1]`.
    pub progress: f64,
}

impl PolicyFeatures {
    /// Number of scalar features.
    pub const DIM: usize = 7;

    /// Builds features from the vehicle state, safety observation, and route
    /// geometry.
    #[must_use]
    pub fn from_observation(
        state: &VehicleState,
        observation: &RelativeObservation,
        road_length: f64,
        road_width: f64,
    ) -> Self {
        let clip = 30.0;
        let half_width = (road_width / 2.0).max(1e-9);
        let (distance, obstacle_lateral) = if observation.distance.is_finite() {
            let d = observation.distance.clamp(0.0, clip);
            // Reconstruct the obstacle's lateral world position from the
            // polar observation (distance is to the surface; pad one meter
            // toward the center).
            let y_obs = state.y + (d + 1.0) * (state.heading + observation.bearing).sin();
            (d, y_obs / half_width)
        } else {
            (clip, 0.0)
        };
        Self {
            lateral: state.y / half_width,
            heading: state.heading,
            speed: state.speed / 15.0,
            obstacle_proximity: distance / clip,
            obstacle_bearing: observation.bearing,
            obstacle_lateral,
            progress: (state.x / road_length.max(1e-9)).clamp(0.0, 1.0),
        }
    }

    /// Flattens into the MLP input layout.
    #[must_use]
    pub fn to_vec(&self) -> Vec<f64> {
        self.to_array().to_vec()
    }

    /// Flattens into the MLP input layout on the stack — no heap traffic,
    /// the form the control-loop hot path feeds to
    /// [`DrivingPolicy::act_scratch`].
    #[must_use]
    pub fn to_array(&self) -> [f64; Self::DIM] {
        [
            self.lateral,
            self.heading,
            self.speed,
            self.obstacle_proximity,
            self.obstacle_bearing,
            self.obstacle_lateral,
            self.progress,
        ]
    }
}

/// An MLP steering/throttle policy.
#[derive(Debug, Clone, PartialEq)]
pub struct DrivingPolicy {
    net: Mlp,
}

impl DrivingPolicy {
    /// Creates a randomly initialized policy with the default
    /// `6 -> 16 -> 16 -> 2` topology and `tanh` heads (bounded actions).
    ///
    /// # Errors
    ///
    /// Propagates [`NnError`] from network construction (cannot fail for
    /// the fixed topology, but kept fallible for API uniformity).
    pub fn new<R: Rng>(rng: &mut R) -> Result<Self, NnError> {
        let net = Mlp::new(
            &[PolicyFeatures::DIM, 16, 16, 2],
            Activation::Tanh,
            Activation::Tanh,
            rng,
        )?;
        Ok(Self { net })
    }

    /// The underlying network.
    #[must_use]
    pub fn network(&self) -> &Mlp {
        &self.net
    }

    /// Flat parameter vector (for CEM).
    #[must_use]
    pub fn to_params(&self) -> Vec<f64> {
        self.net.to_params()
    }

    /// Loads a flat parameter vector.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] on length mismatch.
    pub fn set_params(&mut self, params: &[f64]) -> Result<(), NnError> {
        self.net.set_params(params)
    }

    /// Maps features to a control action. Outputs are already in `[-1, 1]`
    /// thanks to the `tanh` head; throttle is re-biased toward forward
    /// motion so an untrained policy still explores.
    #[must_use]
    pub fn act(&self, features: &PolicyFeatures) -> Control {
        let mut scratch = InferenceScratch::for_mlp(&self.net);
        self.act_scratch(features, &mut scratch)
    }

    /// Allocation-free [`Self::act`]: inference runs inside the reused
    /// `scratch` workspace. Bit-identical to `act`.
    #[must_use]
    pub fn act_scratch(
        &self,
        features: &PolicyFeatures,
        scratch: &mut InferenceScratch,
    ) -> Control {
        self.act_scratch_with::<ScalarKernel>(features, scratch)
    }

    /// [`Self::act_scratch`] over an explicit [`Kernel`] backend — the form
    /// the SEO runtime's monomorphized episode loop calls. Bit-identical
    /// across backends by the kernel contract (see [`crate::kernel`]).
    #[must_use]
    pub fn act_scratch_with<K: Kernel>(
        &self,
        features: &PolicyFeatures,
        scratch: &mut InferenceScratch,
    ) -> Control {
        let out = self
            .net
            .forward_into_with::<K>(&features.to_array(), scratch);
        Control::new(out[0], 0.5 + 0.5 * out[1])
    }
}

/// Deterministic obstacle-repulsion controller.
///
/// Steers away from the nearest obstacle with strength growing as distance
/// shrinks, recentres on the lane, and modulates throttle by obstacle
/// proximity. Completes every paper scenario (0–8 obstacles) without
/// collisions, making it the reference agent for the experiment harness.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PotentialFieldController {
    /// Distance at which repulsion starts, meters.
    pub influence_radius: f64,
    /// Half-angle of the forward cone within which an obstacle repels,
    /// radians.
    pub bearing_cone: f64,
    /// Steering gain for obstacle repulsion.
    pub repulsion_gain: f64,
    /// Steering gain for lane recentring.
    pub centering_gain: f64,
    /// Steering gain for heading alignment.
    pub heading_gain: f64,
    /// Cruise speed target with no obstacle in range, m/s.
    pub target_speed: f64,
    /// Steering gain pushing back from the road edges (never suppressed).
    pub edge_gain: f64,
}

impl Default for PotentialFieldController {
    fn default() -> Self {
        Self {
            influence_radius: 16.0,
            bearing_cone: 1.5,
            repulsion_gain: 2.4,
            centering_gain: 0.35,
            heading_gain: 0.9,
            target_speed: 10.0,
            edge_gain: 8.0,
        }
    }
}

impl PotentialFieldController {
    /// Computes the control for the given features.
    ///
    /// Near an obstacle the controller (i) suppresses lane recentring so it
    /// never steers back *into* the obstacle, (ii) passes on the side of
    /// the road with more room (judged by the obstacle's lateral
    /// position), and (iii) sheds speed proportionally to urgency. A road
    /// edge guard (never suppressed) keeps the vehicle on the drivable
    /// surface, and throttle regulates toward a cruise speed target.
    #[must_use]
    pub fn act(&self, features: &PolicyFeatures) -> Control {
        let distance = features.obstacle_proximity * 30.0;
        let bearing = features.obstacle_bearing;
        let near = distance < self.influence_radius && bearing.abs() < self.bearing_cone;
        let closeness = (1.0 - distance / self.influence_radius).clamp(0.0, 1.0);
        let suppress = if near {
            (1.0 - 0.9 * closeness).max(0.1)
        } else {
            1.0
        };
        let mut steering = (-self.centering_gain * features.lateral) * suppress
            - self.heading_gain * features.heading * (1.0 - 0.5 * closeness);
        let mut urgency = 0.0;
        if near {
            // Side selection, in priority order: (1) if the vehicle is
            // already clearly on one side of the obstacle, keep passing on
            // that side; (2) otherwise pass on the roomier side (an
            // obstacle left of the centerline is passed on the right);
            // (3) fall back to bearing, then to a fixed side.
            let relative = features.lateral - features.obstacle_lateral;
            let side = if relative.abs() > 0.1 {
                relative.signum()
            } else if features.obstacle_lateral.abs() > 0.03 {
                -features.obstacle_lateral.signum()
            } else if bearing.abs() > 0.02 {
                -bearing.signum()
            } else {
                1.0
            };
            // Repulsion fades once lateral clearance is achieved (~0.75 of
            // the half-width, i.e. ~3 m on the paper road), so the vehicle
            // is not pushed past the clearance corridor into the road edge.
            let in_path = (1.0 - (relative.abs() / 0.75).min(1.0)).max(0.0);
            urgency = closeness
                * ((self.bearing_cone - bearing.abs()) / self.bearing_cone).max(0.0)
                * (0.25 + 0.75 * in_path);
            steering += side * self.repulsion_gain * urgency * (0.2 + 0.8 * in_path);
        }
        // Road-edge guard: beyond 80 % of the half-width, push back toward
        // the centerline regardless of obstacle suppression.
        let excess = (features.lateral.abs() - 0.8).max(0.0);
        steering -= self.edge_gain * excess * features.lateral.signum();
        // Speed regulation toward a (risk-reduced) target.
        let target = self.target_speed * (1.0 - 0.7 * urgency);
        let speed = features.speed * 15.0;
        let throttle = (0.5 * (target - speed)).clamp(-1.0, 1.0);
        Control::new(steering, throttle)
    }
}

/// Summary of a training run produced by [`train_driving_policy`].
#[derive(Debug, Clone, PartialEq)]
pub struct TrainingReport {
    /// Per-generation progress.
    pub generations: Vec<Generation>,
    /// Total simulated episodes consumed.
    pub episodes: usize,
    /// Best episode-averaged reward achieved.
    pub best_reward: f64,
}

/// Episode-reward shaping mirroring the paper's setup (progress with
/// penalties for collision and leaving the route).
#[must_use]
pub fn episode_reward(final_state: &VehicleState, status: EpisodeStatus, steps: usize) -> f64 {
    let progress = final_state.x.clamp(0.0, 150.0);
    let terminal = match status {
        EpisodeStatus::Completed => 100.0,
        EpisodeStatus::Collided => -100.0,
        EpisodeStatus::OffRoad => -80.0,
        EpisodeStatus::TimedOut => -40.0,
        EpisodeStatus::Running => 0.0,
    };
    progress + terminal - 0.01 * steps as f64
}

/// Scores one policy over a batch of seeded scenarios; higher is better.
fn evaluate_policy(
    policy: &DrivingPolicy,
    n_obstacles: usize,
    seeds: &[u64],
    episode_config: &EpisodeConfig,
) -> f64 {
    let mut total = 0.0;
    for &seed in seeds {
        let world = ScenarioConfig::new(n_obstacles).with_seed(seed).generate();
        let road = world.road();
        let mut ep = Episode::new(world, *episode_config);
        while ep.status() == EpisodeStatus::Running {
            let obs = RelativeObservation::observe_ahead(ep.world(), &ep.state());
            let features =
                PolicyFeatures::from_observation(&ep.state(), &obs, road.length, road.width);
            ep.step(policy.act(&features));
        }
        total += episode_reward(&ep.state(), ep.status(), ep.steps());
    }
    total / seeds.len().max(1) as f64
}

/// Trains a [`DrivingPolicy`] with CEM over simulated episodes.
///
/// `episode_budget` caps the total number of simulated episodes (the paper
/// uses 2000); each CEM generation consumes `population x len(seeds)`
/// episodes.
///
/// # Errors
///
/// Propagates [`NnError`] from policy construction or an invalid
/// [`CemConfig`].
pub fn train_driving_policy(
    n_obstacles: usize,
    episode_budget: usize,
    cem: CemConfig,
    seed: u64,
) -> Result<(DrivingPolicy, TrainingReport), NnError> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut policy = DrivingPolicy::new(&mut rng)?;
    let mut trainer = CemTrainer::new(policy.to_params(), cem)?;
    let episode_config = EpisodeConfig::default().with_max_steps(1500);
    let eval_seeds: Vec<u64> = (0..3).map(|i| seed.wrapping_add(i * 1009)).collect();

    let episodes_per_gen = cem.population * eval_seeds.len();
    let generations_budget = episode_budget / episodes_per_gen.max(1);
    let mut generations = Vec::with_capacity(generations_budget);
    let mut scratch = policy.clone();
    for _ in 0..generations_budget {
        let report = trainer.step(
            |params| {
                scratch
                    .set_params(params)
                    .expect("trainer preserves dimension");
                evaluate_policy(&scratch, n_obstacles, &eval_seeds, &episode_config)
            },
            &mut rng,
        );
        generations.push(report);
    }
    policy.set_params(trainer.best_params())?;
    let episodes = generations.len() * episodes_per_gen;
    Ok((
        policy,
        TrainingReport {
            generations,
            episodes,
            best_reward: trainer.best_score(),
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use seo_sim::world::World;

    fn features_at(x: f64, y: f64, distance: f64, bearing: f64) -> PolicyFeatures {
        let state = VehicleState::new(x, y, 0.0, 8.0);
        let obs = RelativeObservation {
            distance,
            bearing,
            speed: 8.0,
        };
        PolicyFeatures::from_observation(&state, &obs, 100.0, 8.0)
    }

    #[test]
    fn features_normalize_sensibly() {
        let f = features_at(50.0, 2.0, 10.0, 0.3);
        assert!((f.lateral - 0.5).abs() < 1e-12);
        // Obstacle ~11 m out at bearing 0.3 from y = 2: left of center.
        assert!(f.obstacle_lateral > f.lateral);
        assert!((f.progress - 0.5).abs() < 1e-12);
        assert!((f.obstacle_proximity - 10.0 / 30.0).abs() < 1e-12);
        assert_eq!(f.to_vec().len(), PolicyFeatures::DIM);
    }

    #[test]
    fn infinite_distance_saturates_proximity() {
        let f = features_at(0.0, 0.0, f64::INFINITY, 0.0);
        assert_eq!(f.obstacle_proximity, 1.0);
    }

    #[test]
    fn policy_outputs_bounded_controls() {
        let mut rng = StdRng::seed_from_u64(1);
        let policy = DrivingPolicy::new(&mut rng).expect("fixed topology");
        for i in 0..20 {
            let f = features_at(f64::from(i) * 5.0, -1.0, 8.0, -0.4);
            let c = policy.act(&f);
            assert!(c.steering.abs() <= 1.0);
            assert!((-1.0..=1.0).contains(&c.throttle));
        }
    }

    #[test]
    fn policy_param_roundtrip_preserves_actions() {
        let mut rng = StdRng::seed_from_u64(2);
        let a = DrivingPolicy::new(&mut rng).expect("fixed topology");
        let mut b = DrivingPolicy::new(&mut rng).expect("fixed topology");
        b.set_params(&a.to_params()).expect("same dimension");
        let f = features_at(10.0, 0.5, 12.0, 0.2);
        assert_eq!(a.act(&f), b.act(&f));
    }

    #[test]
    fn potential_field_steers_away_from_obstacle() {
        let pf = PotentialFieldController::default();
        // Obstacle slightly to the left and close: steer right (negative).
        let c = pf.act(&features_at(70.0, 0.0, 5.0, 0.2));
        assert!(c.steering < 0.0, "should steer away: {c}");
        // Obstacle to the right: steer left.
        let c = pf.act(&features_at(70.0, 0.0, 5.0, -0.2));
        assert!(c.steering > 0.0, "should steer away: {c}");
    }

    #[test]
    fn potential_field_recentres_lane() {
        let pf = PotentialFieldController::default();
        let c = pf.act(&features_at(10.0, 3.0, f64::INFINITY, 0.0));
        assert!(c.steering < 0.0, "offset left should steer right: {c}");
        // At 8 m/s below the 10 m/s target, throttle pushes forward.
        assert!(c.throttle > 0.0);
    }

    #[test]
    fn potential_field_regulates_speed() {
        let pf = PotentialFieldController::default();
        let slow = PolicyFeatures {
            speed: 2.0 / 15.0,
            obstacle_proximity: 1.0,
            ..Default::default()
        };
        let fast = PolicyFeatures {
            speed: 14.0 / 15.0,
            obstacle_proximity: 1.0,
            ..Default::default()
        };
        assert!(
            pf.act(&slow).throttle > 0.5,
            "well below target: accelerate"
        );
        assert!(pf.act(&fast).throttle < 0.0, "above target: brake");
    }

    #[test]
    fn potential_field_slows_near_obstacles() {
        let pf = PotentialFieldController::default();
        let far = pf.act(&features_at(10.0, 0.0, 25.0, 0.0));
        let near = pf.act(&features_at(10.0, 0.0, 3.0, 0.0));
        assert!(near.throttle < far.throttle);
    }

    #[test]
    fn potential_field_completes_paper_scenarios() {
        let pf = PotentialFieldController::default();
        for n in [0usize, 2, 4] {
            for seed in 0..5u64 {
                let world = ScenarioConfig::new(n).with_seed(seed).generate();
                let road = world.road();
                let mut ep = Episode::new(world, EpisodeConfig::default());
                while ep.status() == EpisodeStatus::Running {
                    let obs = RelativeObservation::observe_ahead(ep.world(), &ep.state());
                    let f = PolicyFeatures::from_observation(
                        &ep.state(),
                        &obs,
                        road.length,
                        road.width,
                    );
                    ep.step(pf.act(&f));
                }
                assert_eq!(
                    ep.status(),
                    EpisodeStatus::Completed,
                    "n={n} seed={seed} ended {} at {}",
                    ep.status(),
                    ep.state()
                );
            }
        }
    }

    #[test]
    fn reward_prefers_completion() {
        let done = VehicleState::new(100.0, 0.0, 0.0, 5.0);
        let crash = VehicleState::new(70.0, 0.0, 0.0, 5.0);
        let r_done = episode_reward(&done, EpisodeStatus::Completed, 700);
        let r_crash = episode_reward(&crash, EpisodeStatus::Collided, 500);
        assert!(r_done > r_crash + 50.0);
    }

    #[test]
    fn cem_training_improves_reward() {
        // Tiny budget: enough to verify the training loop plumbing improves
        // the objective, not to reach expert performance.
        let cem = CemConfig {
            population: 8,
            elites: 3,
            ..Default::default()
        };
        let (_policy, report) = train_driving_policy(0, 8 * 3 * 6, cem, 99).expect("training runs");
        assert_eq!(report.generations.len(), 6);
        assert_eq!(report.episodes, 8 * 3 * 6);
        let first = report.generations.first().expect("nonempty").best_score;
        assert!(
            report.best_reward >= first,
            "best ({}) should be at least the first generation ({first})",
            report.best_reward
        );
    }

    #[test]
    fn empty_world_features_work_end_to_end() {
        let world = World::empty();
        let state = VehicleState::route_start();
        let obs = RelativeObservation::observe(&world, &state);
        let f = PolicyFeatures::from_observation(&state, &obs, 100.0, 8.0);
        assert_eq!(f.obstacle_proximity, 1.0);
        assert_eq!(f.obstacle_bearing, 0.0);
    }
}
