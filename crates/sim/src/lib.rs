//! # seo-sim
//!
//! Driving-world simulator used as the CARLA substitute in the SEO
//! reproduction (DAC 2023, arXiv:2302.12493).
//!
//! The paper's evaluation scenario is: an autonomous vehicle travels along a
//! **100 m road whose final third is populated with obstacles**; a controller
//! outputs steering and throttle every base period; the safety pipeline reads
//! the vehicle's distance and relative orientation to the nearest obstacle.
//! This crate reproduces exactly that closed-loop substrate:
//!
//! * [`vehicle`] — a kinematic bicycle model with steering/throttle controls.
//! * [`world`] — road geometry, circular obstacles, collision and bounds
//!   checks, nearest-obstacle queries.
//! * [`scenario`] — seeded scenario generation matching the paper's layout
//!   (obstacles in the final third of the route).
//! * [`sensing`] — ray-cast range scans and the (distance, relative bearing)
//!   observation the safety filter consumes.
//! * [`episode`] — a steppable episode harness with termination detection.
//!
//! # Example
//!
//! ```
//! use seo_sim::prelude::*;
//!
//! let world = ScenarioConfig::new(2).with_seed(7).generate();
//! let mut episode = Episode::new(world, EpisodeConfig::default());
//! let control = Control::new(0.0, 0.6);
//! while episode.status() == EpisodeStatus::Running {
//!     episode.step(control);
//! }
//! // With no steering the vehicle either finishes or hits an obstacle.
//! assert_ne!(episode.status(), EpisodeStatus::Running);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dynamics;
pub mod episode;
pub mod error;
pub mod scenario;
pub mod sensing;
pub mod traffic;
pub mod vehicle;
pub mod world;

/// Convenient re-exports of the most used simulator types.
pub mod prelude {
    pub use crate::episode::{Episode, EpisodeConfig, EpisodeStatus};
    pub use crate::scenario::ScenarioConfig;
    pub use crate::sensing::{RangeScanner, RelativeObservation};
    pub use crate::vehicle::{BicycleModel, Control, VehicleState};
    pub use crate::world::{Obstacle, Road, World};
}

pub use error::SimError;
