//! Sensing: ray-cast range scans and safety-state observations.
//!
//! Two kinds of observations feed the SEO pipeline:
//!
//! * [`RelativeObservation`] — the precise (distance, relative orientation)
//!   state estimate `x` that the critical subset Λ″ provides to the safety
//!   filter. The paper retrieves this directly from CARLA "for simplicity";
//!   we retrieve it from the simulator ground truth, optionally with noise.
//! * [`RangeScanner`] — a LiDAR-like 1-D range scan over a forward field of
//!   view, used as the input `y_i` to the Λ′ detector models.

use crate::vehicle::VehicleState;
use crate::world::World;
use rand::Rng;

/// Precise safety-state estimate: distance and relative orientation to the
/// nearest obstacle (the `x` consumed by the safety filter Ψ).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RelativeObservation {
    /// Surface distance to the nearest obstacle, meters
    /// (`f64::INFINITY` when the world has no obstacles).
    pub distance: f64,
    /// Bearing of the obstacle center relative to the heading, radians in
    /// `(-pi, pi]`; zero when no obstacle exists.
    pub bearing: f64,
    /// Vehicle forward speed, m/s.
    pub speed: f64,
}

impl RelativeObservation {
    /// Ground-truth observation of the nearest obstacle.
    #[must_use]
    pub fn observe(world: &World, vehicle: &VehicleState) -> Self {
        match world.nearest_obstacle(vehicle) {
            Some(o) => Self {
                distance: o.surface_distance(vehicle.x, vehicle.y),
                bearing: vehicle.bearing_to(o.x, o.y),
                speed: vehicle.speed,
            },
            None => Self {
                distance: f64::INFINITY,
                bearing: 0.0,
                speed: vehicle.speed,
            },
        }
    }

    /// Ground-truth observation of the nearest obstacle **ahead** of the
    /// vehicle (within ±90 degrees of the heading). Driving controllers use
    /// this: an obstacle just passed should no longer steer the vehicle,
    /// even while it is still the closest one overall.
    #[must_use]
    pub fn observe_ahead(world: &World, vehicle: &VehicleState) -> Self {
        let ahead = world
            .obstacles()
            .iter()
            .filter(|o| vehicle.bearing_to(o.x, o.y).abs() < std::f64::consts::FRAC_PI_2)
            .min_by(|a, b| {
                let da = a.surface_distance(vehicle.x, vehicle.y);
                let db = b.surface_distance(vehicle.x, vehicle.y);
                da.partial_cmp(&db).unwrap_or(std::cmp::Ordering::Equal)
            });
        match ahead {
            Some(o) => Self {
                distance: o.surface_distance(vehicle.x, vehicle.y),
                bearing: vehicle.bearing_to(o.x, o.y),
                speed: vehicle.speed,
            },
            None => Self {
                distance: f64::INFINITY,
                bearing: 0.0,
                speed: vehicle.speed,
            },
        }
    }

    /// Observation corrupted with zero-mean Gaussian noise of the given
    /// standard deviations (meters, radians). Distances never go negative.
    #[must_use]
    pub fn observe_noisy<R: Rng>(
        world: &World,
        vehicle: &VehicleState,
        distance_sigma: f64,
        bearing_sigma: f64,
        rng: &mut R,
    ) -> Self {
        let clean = Self::observe(world, vehicle);
        if !clean.distance.is_finite() {
            return clean;
        }
        Self {
            distance: (clean.distance + gaussian(rng) * distance_sigma).max(0.0),
            bearing: clean.bearing + gaussian(rng) * bearing_sigma,
            speed: clean.speed,
        }
    }

    /// Whether any obstacle is visible at all.
    #[must_use]
    pub fn has_obstacle(&self) -> bool {
        self.distance.is_finite()
    }
}

/// Samples a standard normal variate via Box–Muller (keeps the dependency
/// surface to plain `rand`).
fn gaussian<R: Rng>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// A forward-facing 1-D range scanner (LiDAR/radar-like).
///
/// # Example
///
/// ```
/// use seo_sim::prelude::*;
/// use seo_sim::sensing::RangeScanner;
///
/// let world = World::new(Road::default(), vec![Obstacle::new(20.0, 0.0, 1.0)]);
/// let scanner = RangeScanner::new(17, 90.0_f64.to_radians(), 50.0);
/// let scan = scanner.scan(&world, &VehicleState::route_start());
/// // The central ray hits the obstacle surface 19 m ahead.
/// assert!((scan[8] - 19.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RangeScanner {
    n_rays: usize,
    field_of_view: f64,
    max_range: f64,
}

impl RangeScanner {
    /// Creates a scanner with `n_rays` rays spread over `field_of_view`
    /// radians, saturating at `max_range` meters.
    ///
    /// # Panics
    ///
    /// Panics if `n_rays == 0` (a configuration bug).
    #[must_use]
    pub fn new(n_rays: usize, field_of_view: f64, max_range: f64) -> Self {
        assert!(n_rays > 0, "scanner needs at least one ray");
        Self {
            n_rays,
            field_of_view: field_of_view.abs(),
            max_range: max_range.max(0.0),
        }
    }

    /// Number of rays per scan.
    #[must_use]
    pub fn n_rays(&self) -> usize {
        self.n_rays
    }

    /// Saturation range, meters.
    #[must_use]
    pub fn max_range(&self) -> f64 {
        self.max_range
    }

    /// Casts all rays and returns the hit distance per ray (saturated at
    /// `max_range` when nothing is hit).
    ///
    /// Allocates the scan; detector hot paths use [`Self::scan_into`] with a
    /// reused buffer instead.
    #[must_use]
    pub fn scan(&self, world: &World, vehicle: &VehicleState) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.n_rays);
        self.scan_into(world, vehicle, &mut out);
        out
    }

    /// Casts all rays into a caller-provided buffer (cleared first) —
    /// allocation-free once the buffer has reached `n_rays` capacity.
    pub fn scan_into(&self, world: &World, vehicle: &VehicleState, out: &mut Vec<f64>) {
        out.clear();
        for i in 0..self.n_rays {
            let frac = if self.n_rays == 1 {
                0.5
            } else {
                i as f64 / (self.n_rays - 1) as f64
            };
            let angle = vehicle.heading + (frac - 0.5) * self.field_of_view;
            out.push(self.cast_ray(world, vehicle.x, vehicle.y, angle));
        }
    }

    /// Normalized scan in `[0, 1]` (1 = free space at max range), the form
    /// consumed by the neural models.
    #[must_use]
    pub fn scan_normalized(&self, world: &World, vehicle: &VehicleState) -> Vec<f64> {
        if self.max_range == 0.0 {
            return vec![0.0; self.n_rays];
        }
        self.scan(world, vehicle)
            .into_iter()
            .map(|d| d / self.max_range)
            .collect()
    }

    /// Distance along a single ray to the nearest obstacle surface.
    fn cast_ray(&self, world: &World, ox: f64, oy: f64, angle: f64) -> f64 {
        let (dx, dy) = (angle.cos(), angle.sin());
        let mut best = self.max_range;
        for obstacle in world.obstacles() {
            // Solve |o + t*d - c|^2 = r^2 for t >= 0.
            let cx = obstacle.x - ox;
            let cy = obstacle.y - oy;
            let proj = cx * dx + cy * dy;
            if proj < 0.0 {
                continue; // behind the ray origin
            }
            let closest_sq = (cx * cx + cy * cy) - proj * proj;
            let r_sq = obstacle.radius * obstacle.radius;
            if closest_sq > r_sq {
                continue; // ray misses the circle
            }
            let t = proj - (r_sq - closest_sq).sqrt();
            if t >= 0.0 && t < best {
                best = t;
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::{Obstacle, Road};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn world_one_obstacle() -> World {
        World::new(Road::default(), vec![Obstacle::new(20.0, 0.0, 1.0)])
    }

    #[test]
    fn observe_reports_surface_distance_and_bearing() {
        let w = world_one_obstacle();
        let v = VehicleState::new(10.0, 0.0, 0.0, 6.0);
        let obs = RelativeObservation::observe(&w, &v);
        assert!((obs.distance - 9.0).abs() < 1e-12);
        assert!(obs.bearing.abs() < 1e-12);
        assert_eq!(obs.speed, 6.0);
        assert!(obs.has_obstacle());
    }

    #[test]
    fn observe_empty_world() {
        let obs = RelativeObservation::observe(&World::empty(), &VehicleState::route_start());
        assert!(!obs.has_obstacle());
        assert_eq!(obs.bearing, 0.0);
    }

    #[test]
    fn noisy_observation_stays_nonnegative() {
        let w = world_one_obstacle();
        let v = VehicleState::new(19.5, 0.0, 0.0, 5.0); // distance ~0, noise could go negative
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..200 {
            let obs = RelativeObservation::observe_noisy(&w, &v, 2.0, 0.1, &mut rng);
            assert!(obs.distance >= 0.0);
        }
    }

    #[test]
    fn noisy_observation_of_empty_world_is_clean() {
        let mut rng = StdRng::seed_from_u64(1);
        let obs = RelativeObservation::observe_noisy(
            &World::empty(),
            &VehicleState::route_start(),
            1.0,
            1.0,
            &mut rng,
        );
        assert!(!obs.has_obstacle());
    }

    #[test]
    fn central_ray_hits_head_on_obstacle() {
        let w = world_one_obstacle();
        let scanner = RangeScanner::new(9, 60.0_f64.to_radians(), 50.0);
        let scan = scanner.scan(&w, &VehicleState::route_start());
        // Central ray travels 20 - 1 = 19 m to the surface.
        assert!((scan[4] - 19.0).abs() < 1e-9, "central ray: {}", scan[4]);
        // Extreme rays miss and saturate.
        assert_eq!(scan[0], 50.0);
        assert_eq!(scan[8], 50.0);
    }

    #[test]
    fn obstacle_behind_is_invisible() {
        let w = World::new(Road::default(), vec![Obstacle::new(5.0, 0.0, 1.0)]);
        let v = VehicleState::new(10.0, 0.0, 0.0, 5.0); // obstacle behind
        let scanner = RangeScanner::new(5, 90.0_f64.to_radians(), 50.0);
        assert!(scanner.scan(&w, &v).iter().all(|&d| d == 50.0));
    }

    #[test]
    fn normalized_scan_in_unit_range() {
        let w = world_one_obstacle();
        let scanner = RangeScanner::new(32, 120.0_f64.to_radians(), 40.0);
        let scan = scanner.scan_normalized(&w, &VehicleState::route_start());
        assert_eq!(scan.len(), 32);
        assert!(scan.iter().all(|&v| (0.0..=1.0).contains(&v)));
        assert!(
            scan.iter().any(|&v| v < 1.0),
            "some ray should see the obstacle"
        );
    }

    #[test]
    fn nearest_of_two_obstacles_wins_on_shared_ray() {
        let w = World::new(
            Road::default(),
            vec![Obstacle::new(30.0, 0.0, 1.0), Obstacle::new(15.0, 0.0, 1.0)],
        );
        let scanner = RangeScanner::new(1, 0.0, 100.0);
        let scan = scanner.scan(&w, &VehicleState::route_start());
        assert!((scan[0] - 14.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least one ray")]
    fn zero_rays_panics() {
        let _ = RangeScanner::new(0, 1.0, 1.0);
    }

    #[test]
    fn single_ray_points_forward() {
        let w = world_one_obstacle();
        let scanner = RangeScanner::new(1, 2.0, 50.0);
        let scan = scanner.scan(&w, &VehicleState::route_start());
        assert!((scan[0] - 19.0).abs() < 1e-9);
    }
}
