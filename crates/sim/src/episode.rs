//! Steppable episode harness with termination detection.

use crate::vehicle::{BicycleModel, Control, VehicleState};
use crate::world::World;
use seo_platform::units::Seconds;
use std::borrow::Cow;
use std::fmt;

/// Why (or whether) an episode has ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EpisodeStatus {
    /// The episode is still in progress.
    Running,
    /// The vehicle reached the end of the route without incident.
    Completed,
    /// The vehicle struck an obstacle.
    Collided,
    /// The vehicle left the drivable surface.
    OffRoad,
    /// The step budget was exhausted before any other terminal event.
    TimedOut,
}

impl EpisodeStatus {
    /// Whether this is a terminal status.
    #[must_use]
    pub fn is_terminal(self) -> bool {
        self != Self::Running
    }

    /// Whether the episode ended successfully (route completed, no
    /// collision) — the paper averages metrics over 25 such runs.
    #[must_use]
    pub fn is_success(self) -> bool {
        self == Self::Completed
    }
}

impl fmt::Display for EpisodeStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Self::Running => "running",
            Self::Completed => "completed",
            Self::Collided => "collided",
            Self::OffRoad => "off-road",
            Self::TimedOut => "timed-out",
        };
        f.write_str(s)
    }
}

/// Episode stepping parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpisodeConfig {
    /// Simulation step, seconds (matched to the SEO base period τ).
    pub dt: Seconds,
    /// Vehicle dynamics parameters.
    pub model: BicycleModel,
    /// Initial vehicle state.
    pub start: VehicleState,
    /// Collision margin around the vehicle reference point, meters.
    pub collision_margin: f64,
    /// Hard cap on the number of steps before `TimedOut`.
    pub max_steps: usize,
}

impl Default for EpisodeConfig {
    /// τ = 20 ms steps, default bicycle, paper start state, 0.5 m margin,
    /// 60 s wall-clock budget.
    fn default() -> Self {
        let dt = Seconds::from_millis(20.0);
        Self {
            dt,
            model: BicycleModel::default(),
            start: VehicleState::route_start(),
            collision_margin: 0.5,
            max_steps: 3000,
        }
    }
}

impl EpisodeConfig {
    /// Sets the simulation step (builder style).
    #[must_use]
    pub fn with_dt(mut self, dt: Seconds) -> Self {
        self.dt = dt;
        self
    }

    /// Sets the step budget (builder style).
    #[must_use]
    pub fn with_max_steps(mut self, max_steps: usize) -> Self {
        self.max_steps = max_steps;
        self
    }
}

/// A single closed-loop driving episode.
///
/// The caller supplies one [`Control`] per step; the episode advances the
/// dynamics and tracks termination. See the crate-level example.
///
/// The world is held as a [`Cow`]: batch runners start thousands of
/// episodes against **borrowed** worlds ([`Episode::borrowed`]) without
/// cloning obstacle lists per run, while dynamic scenarios take the owned
/// path and mutate their snapshot in place via [`Episode::update_world`].
#[derive(Debug, Clone)]
pub struct Episode<'w> {
    world: Cow<'w, World>,
    config: EpisodeConfig,
    state: VehicleState,
    status: EpisodeStatus,
    steps: usize,
}

impl Episode<'static> {
    /// Starts a fresh episode owning `world`.
    #[must_use]
    pub fn new(world: World, config: EpisodeConfig) -> Self {
        Episode::from_cow(Cow::Owned(world), config)
    }
}

impl<'w> Episode<'w> {
    /// Starts a fresh episode **borrowing** `world` — the zero-copy entry
    /// point for sweep engines that fan one generated world out across many
    /// runs or reuse the caller's world storage.
    #[must_use]
    pub fn borrowed(world: &'w World, config: EpisodeConfig) -> Self {
        Self::from_cow(Cow::Borrowed(world), config)
    }

    fn from_cow(world: Cow<'w, World>, config: EpisodeConfig) -> Self {
        let state = config.start;
        let mut episode = Self {
            world,
            config,
            state,
            status: EpisodeStatus::Running,
            steps: 0,
        };
        // The start state itself may already be terminal (e.g. spawned
        // inside an obstacle in a degenerate scenario).
        episode.refresh_status();
        episode
    }

    /// The world being driven.
    #[must_use]
    pub fn world(&self) -> &World {
        self.world.as_ref()
    }

    /// Current vehicle state.
    #[must_use]
    pub fn state(&self) -> VehicleState {
        self.state
    }

    /// Current status.
    #[must_use]
    pub fn status(&self) -> EpisodeStatus {
        self.status
    }

    /// Steps taken so far.
    #[must_use]
    pub fn steps(&self) -> usize {
        self.steps
    }

    /// Elapsed simulated time.
    #[must_use]
    pub fn elapsed(&self) -> Seconds {
        Seconds::new(self.steps as f64 * self.config.dt.as_secs())
    }

    /// The episode configuration.
    #[must_use]
    pub fn config(&self) -> &EpisodeConfig {
        &self.config
    }

    /// Replaces the world (for dynamic scenarios where obstacles move) and
    /// re-evaluates the termination conditions against it.
    ///
    /// Road geometry is expected to stay fixed; only obstacle positions
    /// should change between snapshots.
    pub fn set_world(&mut self, world: World) -> EpisodeStatus {
        self.world = Cow::Owned(world);
        if !self.status.is_terminal() {
            self.refresh_status();
        }
        self.status
    }

    /// Mutates the world in place (allocation-free snapshot advancement for
    /// dynamic scenarios: `episode.update_world(|w| dynamic.snapshot_into(now, w))`)
    /// and re-evaluates the termination conditions.
    ///
    /// A borrowed world is cloned into owned storage on the first call;
    /// subsequent calls reuse it.
    pub fn update_world(&mut self, f: impl FnOnce(&mut World)) -> EpisodeStatus {
        f(self.world.to_mut());
        if !self.status.is_terminal() {
            self.refresh_status();
        }
        self.status
    }

    /// Applies `control` for one step and returns the new status.
    ///
    /// Stepping a terminated episode is a no-op that returns the terminal
    /// status unchanged, so runner loops need no special casing.
    pub fn step(&mut self, control: Control) -> EpisodeStatus {
        if self.status.is_terminal() {
            return self.status;
        }
        self.state = self.config.model.step(self.state, control, self.config.dt);
        self.steps += 1;
        self.refresh_status();
        self.status
    }

    fn refresh_status(&mut self) {
        if self
            .world
            .is_collision(&self.state, self.config.collision_margin)
        {
            self.status = EpisodeStatus::Collided;
        } else if self.world.is_off_road(&self.state) {
            self.status = EpisodeStatus::OffRoad;
        } else if self.world.is_route_complete(&self.state) {
            self.status = EpisodeStatus::Completed;
        } else if self.steps >= self.config.max_steps {
            self.status = EpisodeStatus::TimedOut;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::ScenarioConfig;
    use crate::world::{Obstacle, Road};

    #[test]
    fn straight_drive_on_empty_road_completes() {
        let mut ep = Episode::new(World::empty(), EpisodeConfig::default());
        while ep.status() == EpisodeStatus::Running {
            ep.step(Control::new(0.0, 1.0));
        }
        assert_eq!(ep.status(), EpisodeStatus::Completed);
        assert!(ep.state().x >= 100.0);
        assert!(ep.elapsed().as_secs() > 0.0);
    }

    #[test]
    fn head_on_obstacle_collides() {
        let world = World::new(Road::default(), vec![Obstacle::new(50.0, 0.0, 1.5)]);
        let mut ep = Episode::new(world, EpisodeConfig::default());
        while ep.status() == EpisodeStatus::Running {
            ep.step(Control::new(0.0, 1.0));
        }
        assert_eq!(ep.status(), EpisodeStatus::Collided);
        assert!(ep.state().x < 52.0);
    }

    #[test]
    fn hard_left_goes_off_road() {
        let mut ep = Episode::new(World::empty(), EpisodeConfig::default());
        while ep.status() == EpisodeStatus::Running {
            ep.step(Control::new(1.0, 1.0));
        }
        assert_eq!(ep.status(), EpisodeStatus::OffRoad);
    }

    #[test]
    fn zero_throttle_times_out() {
        let cfg = EpisodeConfig {
            start: VehicleState::new(0.0, 0.0, 0.0, 0.0),
            ..Default::default()
        };
        let mut ep = Episode::new(World::empty(), cfg);
        while ep.status() == EpisodeStatus::Running {
            ep.step(Control::coast());
        }
        assert_eq!(ep.status(), EpisodeStatus::TimedOut);
        assert_eq!(ep.steps(), 3000);
    }

    #[test]
    fn stepping_terminal_episode_is_noop() {
        let cfg = EpisodeConfig::default().with_max_steps(1);
        let mut ep = Episode::new(World::empty(), cfg);
        ep.step(Control::coast());
        let status = ep.status();
        assert!(status.is_terminal());
        let steps = ep.steps();
        assert_eq!(ep.step(Control::new(1.0, 1.0)), status);
        assert_eq!(ep.steps(), steps);
    }

    #[test]
    fn spawning_inside_obstacle_is_immediately_terminal() {
        let world = World::new(Road::default(), vec![Obstacle::new(0.0, 0.0, 2.0)]);
        let ep = Episode::new(world, EpisodeConfig::default());
        assert_eq!(ep.status(), EpisodeStatus::Collided);
    }

    #[test]
    fn status_helpers() {
        assert!(EpisodeStatus::Completed.is_success());
        assert!(!EpisodeStatus::Collided.is_success());
        assert!(EpisodeStatus::Collided.is_terminal());
        assert!(!EpisodeStatus::Running.is_terminal());
        assert_eq!(EpisodeStatus::OffRoad.to_string(), "off-road");
    }

    #[test]
    fn generated_scenario_episode_runs() {
        let world = ScenarioConfig::new(2).with_seed(3).generate();
        let mut ep = Episode::new(world, EpisodeConfig::default());
        for _ in 0..10 {
            ep.step(Control::new(0.0, 0.5));
        }
        assert_eq!(ep.steps(), 10);
        assert!((ep.elapsed().as_secs() - 0.2).abs() < 1e-12);
    }
}
