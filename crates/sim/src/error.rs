//! Error type for the simulator.

use std::error::Error;
use std::fmt;

/// Errors raised while configuring or running the simulator.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SimError {
    /// A configuration field was out of its valid range.
    InvalidConfig {
        /// Name of the offending field.
        field: &'static str,
        /// Human-readable constraint description.
        constraint: &'static str,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::InvalidConfig { field, constraint } => {
                write!(f, "invalid simulator config: {field} must {constraint}")
            }
        }
    }
}

impl Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_field() {
        let e = SimError::InvalidConfig {
            field: "wheelbase",
            constraint: "be positive",
        };
        assert!(e.to_string().contains("wheelbase"));
    }
}
