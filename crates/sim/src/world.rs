//! Road, obstacles, and world queries.

use crate::vehicle::VehicleState;
use std::fmt;

/// A circular static obstacle on the road plane.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Obstacle {
    /// Longitudinal center position, meters.
    pub x: f64,
    /// Lateral center position, meters.
    pub y: f64,
    /// Collision radius, meters.
    pub radius: f64,
}

impl Obstacle {
    /// Creates an obstacle; radius is clamped to be non-negative.
    #[must_use]
    pub fn new(x: f64, y: f64, radius: f64) -> Self {
        Self {
            x,
            y,
            radius: radius.max(0.0),
        }
    }

    /// Distance from a point to the obstacle *surface* (negative inside).
    #[must_use]
    pub fn surface_distance(&self, px: f64, py: f64) -> f64 {
        ((self.x - px).powi(2) + (self.y - py).powi(2)).sqrt() - self.radius
    }
}

impl fmt::Display for Obstacle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "obstacle at ({:.1}, {:.1}) r={:.1} m",
            self.x, self.y, self.radius
        )
    }
}

/// Straight road segment along +x.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Road {
    /// Route length, meters (the paper uses 100 m).
    pub length: f64,
    /// Full road width, meters.
    pub width: f64,
}

impl Default for Road {
    /// The paper's 100 m route with a 10 m drivable width.
    fn default() -> Self {
        Self {
            length: 100.0,
            width: 10.0,
        }
    }
}

impl Road {
    /// Creates a road; both dimensions clamped positive.
    #[must_use]
    pub fn new(length: f64, width: f64) -> Self {
        Self {
            length: length.max(1.0),
            width: width.max(1.0),
        }
    }

    /// Whether the lateral position is within the drivable surface.
    #[must_use]
    pub fn contains_lateral(&self, y: f64) -> bool {
        y.abs() <= self.width / 2.0
    }

    /// Whether the longitudinal position has passed the route end.
    #[must_use]
    pub fn is_past_end(&self, x: f64) -> bool {
        x >= self.length
    }
}

/// The complete static world: road plus obstacles.
///
/// # Example
///
/// ```
/// use seo_sim::world::{Obstacle, Road, World};
/// use seo_sim::vehicle::VehicleState;
///
/// let world = World::new(Road::default(), vec![Obstacle::new(80.0, 0.0, 1.0)]);
/// let vehicle = VehicleState::new(70.0, 0.0, 0.0, 5.0);
/// let nearest = world.nearest_obstacle(&vehicle).expect("one obstacle");
/// assert_eq!(nearest.x, 80.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct World {
    road: Road,
    obstacles: Vec<Obstacle>,
}

impl World {
    /// Creates a world from a road and obstacle list.
    #[must_use]
    pub fn new(road: Road, obstacles: Vec<Obstacle>) -> Self {
        Self { road, obstacles }
    }

    /// An obstacle-free world on the default road.
    #[must_use]
    pub fn empty() -> Self {
        Self::new(Road::default(), Vec::new())
    }

    /// Overwrites this world in place, reusing the obstacle buffer — the
    /// allocation-free path dynamic scenarios use to advance their snapshot
    /// every base period.
    pub fn refill(&mut self, road: Road, obstacles: impl Iterator<Item = Obstacle>) {
        self.road = road;
        self.obstacles.clear();
        self.obstacles.extend(obstacles);
    }

    /// The road geometry.
    #[must_use]
    pub fn road(&self) -> Road {
        self.road
    }

    /// All obstacles.
    #[must_use]
    pub fn obstacles(&self) -> &[Obstacle] {
        &self.obstacles
    }

    /// The obstacle whose *surface* is closest to the vehicle, if any.
    #[must_use]
    pub fn nearest_obstacle(&self, vehicle: &VehicleState) -> Option<&Obstacle> {
        self.obstacles.iter().min_by(|a, b| {
            let da = a.surface_distance(vehicle.x, vehicle.y);
            let db = b.surface_distance(vehicle.x, vehicle.y);
            da.partial_cmp(&db).unwrap_or(std::cmp::Ordering::Equal)
        })
    }

    /// Surface distance to the nearest obstacle, or `f64::INFINITY` when the
    /// world has none.
    #[must_use]
    pub fn nearest_obstacle_distance(&self, vehicle: &VehicleState) -> f64 {
        self.nearest_obstacle(vehicle)
            .map_or(f64::INFINITY, |o| o.surface_distance(vehicle.x, vehicle.y))
    }

    /// Whether the vehicle (treated as a point with `margin` radius) overlaps
    /// any obstacle.
    #[must_use]
    pub fn is_collision(&self, vehicle: &VehicleState, margin: f64) -> bool {
        self.obstacles
            .iter()
            .any(|o| o.surface_distance(vehicle.x, vehicle.y) <= margin)
    }

    /// Whether the vehicle has left the drivable surface.
    #[must_use]
    pub fn is_off_road(&self, vehicle: &VehicleState) -> bool {
        !self.road.contains_lateral(vehicle.y)
    }

    /// Whether the vehicle has completed the route.
    #[must_use]
    pub fn is_route_complete(&self, vehicle: &VehicleState) -> bool {
        self.road.is_past_end(vehicle.x)
    }
}

impl fmt::Display for World {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.0} m x {:.0} m road with {} obstacle(s)",
            self.road.length,
            self.road.width,
            self.obstacles.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn world_with(obs: &[(f64, f64, f64)]) -> World {
        World::new(
            Road::default(),
            obs.iter()
                .map(|&(x, y, r)| Obstacle::new(x, y, r))
                .collect(),
        )
    }

    #[test]
    fn surface_distance_sign() {
        let o = Obstacle::new(0.0, 0.0, 2.0);
        assert!((o.surface_distance(5.0, 0.0) - 3.0).abs() < 1e-12);
        assert!(o.surface_distance(1.0, 0.0) < 0.0, "inside is negative");
        assert!(
            (o.surface_distance(2.0, 0.0)).abs() < 1e-12,
            "zero on surface"
        );
    }

    #[test]
    fn negative_radius_clamped() {
        assert_eq!(Obstacle::new(0.0, 0.0, -1.0).radius, 0.0);
    }

    #[test]
    fn nearest_obstacle_picks_closest_surface() {
        // Big obstacle farther away can still be nearest by surface distance.
        let w = world_with(&[(10.0, 0.0, 0.5), (12.0, 0.0, 5.0)]);
        let v = VehicleState::new(0.0, 0.0, 0.0, 0.0);
        let nearest = w.nearest_obstacle(&v).expect("two obstacles");
        assert_eq!(nearest.x, 12.0, "surface of the big one is closer");
    }

    #[test]
    fn empty_world_queries() {
        let w = World::empty();
        let v = VehicleState::route_start();
        assert!(w.nearest_obstacle(&v).is_none());
        assert_eq!(w.nearest_obstacle_distance(&v), f64::INFINITY);
        assert!(!w.is_collision(&v, 1.0));
    }

    #[test]
    fn collision_respects_margin() {
        let w = world_with(&[(10.0, 0.0, 1.0)]);
        let v = VehicleState::new(8.5, 0.0, 0.0, 0.0); // surface distance 0.5
        assert!(!w.is_collision(&v, 0.4));
        assert!(w.is_collision(&v, 0.6));
    }

    #[test]
    fn road_bounds() {
        let r = Road::default();
        assert!(r.contains_lateral(4.9));
        assert!(!r.contains_lateral(5.1));
        assert!(!r.is_past_end(99.9));
        assert!(r.is_past_end(100.0));
        let w = World::empty();
        assert!(w.is_off_road(&VehicleState::new(0.0, 6.0, 0.0, 0.0)));
        assert!(w.is_route_complete(&VehicleState::new(101.0, 0.0, 0.0, 0.0)));
    }

    #[test]
    fn road_new_clamps() {
        let r = Road::new(-5.0, 0.0);
        assert_eq!(r.length, 1.0);
        assert_eq!(r.width, 1.0);
    }

    #[test]
    fn displays() {
        assert!(World::empty().to_string().contains("0 obstacle"));
        assert!(Obstacle::new(1.0, 2.0, 3.0).to_string().contains("r=3.0"));
    }

    #[test]
    fn clone_roundtrip() {
        let w = world_with(&[(70.0, 1.0, 1.5)]);
        let back = w.clone();
        assert_eq!(back, w);
    }
}
