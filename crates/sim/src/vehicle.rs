//! Kinematic bicycle vehicle model.
//!
//! The paper's safety analysis (Section III-B) only requires the vehicle's
//! dynamics to exhibit uniform continuity so that the progression of state
//! under a *frozen* control can be integrated forward in time. A kinematic
//! bicycle model satisfies that and is the standard low-fidelity stand-in for
//! CARLA's vehicle physics.

use crate::error::SimError;
use seo_platform::units::Seconds;
use std::fmt;

/// Normalizes an angle into `(-pi, pi]`.
#[must_use]
pub fn wrap_angle(theta: f64) -> f64 {
    let mut a = theta % std::f64::consts::TAU;
    if a <= -std::f64::consts::PI {
        a += std::f64::consts::TAU;
    } else if a > std::f64::consts::PI {
        a -= std::f64::consts::TAU;
    }
    a
}

/// Planar pose and speed of the vehicle.
///
/// The road runs along +x; `y` is the lateral offset from the centerline.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct VehicleState {
    /// Longitudinal position along the road, meters.
    pub x: f64,
    /// Lateral position (0 = centerline), meters.
    pub y: f64,
    /// Heading angle, radians (0 = along +x).
    pub heading: f64,
    /// Forward speed, m/s (non-negative).
    pub speed: f64,
}

impl VehicleState {
    /// Creates a state at the given pose.
    #[must_use]
    pub fn new(x: f64, y: f64, heading: f64, speed: f64) -> Self {
        Self {
            x,
            y,
            heading,
            speed,
        }
    }

    /// The paper's starting condition: at the route origin, on the
    /// centerline, already rolling at a modest speed.
    #[must_use]
    pub fn route_start() -> Self {
        Self {
            x: 0.0,
            y: 0.0,
            heading: 0.0,
            speed: 5.0,
        }
    }

    /// Euclidean distance to a point.
    #[must_use]
    pub fn distance_to(&self, px: f64, py: f64) -> f64 {
        ((self.x - px).powi(2) + (self.y - py).powi(2)).sqrt()
    }

    /// Bearing of a point relative to the vehicle heading, in `(-pi, pi]`.
    /// Zero means dead ahead; positive means to the left.
    #[must_use]
    pub fn bearing_to(&self, px: f64, py: f64) -> f64 {
        wrap_angle((py - self.y).atan2(px - self.x) - self.heading)
    }
}

impl fmt::Display for VehicleState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "({:.2} m, {:.2} m) heading {:.1} deg @ {:.2} m/s",
            self.x,
            self.y,
            self.heading.to_degrees(),
            self.speed
        )
    }
}

/// A raw control action `u = (steering, throttle)`.
///
/// Matches the paper's RL agent output: steering angle command in `[-1, 1]`
/// (scaled by the vehicle's maximum steering angle) and throttle in
/// `[-1, 1]` (negative values brake).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Control {
    /// Normalized steering command in `[-1, 1]`.
    pub steering: f64,
    /// Normalized throttle command in `[-1, 1]`.
    pub throttle: f64,
}

impl Control {
    /// Creates a control action, clamping both channels to `[-1, 1]`.
    #[must_use]
    pub fn new(steering: f64, throttle: f64) -> Self {
        Self {
            steering: steering.clamp(-1.0, 1.0),
            throttle: throttle.clamp(-1.0, 1.0),
        }
    }

    /// A coasting action (no steering, no throttle).
    #[must_use]
    pub fn coast() -> Self {
        Self::default()
    }
}

impl fmt::Display for Control {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "steer {:+.2}, throttle {:+.2}",
            self.steering, self.throttle
        )
    }
}

/// Kinematic bicycle dynamics `x_dot = f(x, u)`.
///
/// # Example
///
/// ```
/// use seo_sim::vehicle::{BicycleModel, Control, VehicleState};
/// use seo_platform::units::Seconds;
///
/// let model = BicycleModel::default();
/// let mut state = VehicleState::route_start();
/// state = model.step(state, Control::new(0.0, 1.0), Seconds::from_millis(20.0));
/// assert!(state.x > 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BicycleModel {
    /// Distance between axles, meters.
    pub wheelbase: f64,
    /// Maximum steering angle magnitude, radians.
    pub max_steering_angle: f64,
    /// Maximum forward acceleration at full throttle, m/s^2.
    pub max_acceleration: f64,
    /// Maximum braking deceleration at full reverse throttle, m/s^2.
    pub max_braking: f64,
    /// Maximum forward speed, m/s.
    pub max_speed: f64,
    /// Linear drag coefficient, 1/s (models rolling resistance).
    pub drag: f64,
}

impl Default for BicycleModel {
    /// A compact passenger-car parameterization: 2.7 m wheelbase, 35 degrees
    /// max steering, 4 m/s^2 acceleration, 8 m/s^2 braking, 15 m/s top speed.
    fn default() -> Self {
        Self {
            wheelbase: 2.7,
            max_steering_angle: 35.0_f64.to_radians(),
            max_acceleration: 4.0,
            max_braking: 8.0,
            max_speed: 15.0,
            drag: 0.05,
        }
    }
}

impl BicycleModel {
    /// Validates the parameterization.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] when any physical parameter is
    /// non-positive or non-finite (drag may be zero).
    pub fn validate(&self) -> Result<(), SimError> {
        let positive: [(&'static str, f64); 5] = [
            ("wheelbase", self.wheelbase),
            ("max_steering_angle", self.max_steering_angle),
            ("max_acceleration", self.max_acceleration),
            ("max_braking", self.max_braking),
            ("max_speed", self.max_speed),
        ];
        for (field, value) in positive {
            if !(value.is_finite() && value > 0.0) {
                return Err(SimError::InvalidConfig {
                    field,
                    constraint: "be finite and positive",
                });
            }
        }
        if !(self.drag.is_finite() && self.drag >= 0.0) {
            return Err(SimError::InvalidConfig {
                field: "drag",
                constraint: "be finite and non-negative",
            });
        }
        Ok(())
    }

    /// Continuous-time derivative of the state under control `u`.
    ///
    /// Returns `(x_dot, y_dot, heading_dot, speed_dot)`.
    #[must_use]
    pub fn derivative(&self, state: VehicleState, control: Control) -> (f64, f64, f64, f64) {
        let steer = control.steering.clamp(-1.0, 1.0) * self.max_steering_angle;
        let throttle = control.throttle.clamp(-1.0, 1.0);
        let accel = if throttle >= 0.0 {
            throttle * self.max_acceleration
        } else {
            throttle * self.max_braking
        };
        let x_dot = state.speed * state.heading.cos();
        let y_dot = state.speed * state.heading.sin();
        let heading_dot = state.speed * steer.tan() / self.wheelbase;
        let speed_dot = accel - self.drag * state.speed;
        (x_dot, y_dot, heading_dot, speed_dot)
    }

    /// Integrates the dynamics forward by `dt` (semi-implicit Euler, which is
    /// stable at the 1–25 ms steps SEO uses).
    ///
    /// Speed is clamped to `[0, max_speed]`; heading is wrapped to
    /// `(-pi, pi]`.
    #[must_use]
    pub fn step(&self, state: VehicleState, control: Control, dt: Seconds) -> VehicleState {
        let dt = dt.as_secs();
        let (_, _, _, speed_dot) = self.derivative(state, control);
        let new_speed = (state.speed + speed_dot * dt).clamp(0.0, self.max_speed);
        // Integrate pose with the updated speed (semi-implicit).
        let steer = control.steering.clamp(-1.0, 1.0) * self.max_steering_angle;
        let heading_dot = new_speed * steer.tan() / self.wheelbase;
        let new_heading = wrap_angle(state.heading + heading_dot * dt);
        let avg_heading = wrap_angle(state.heading + 0.5 * heading_dot * dt);
        VehicleState {
            x: state.x + new_speed * avg_heading.cos() * dt,
            y: state.y + new_speed * avg_heading.sin() * dt,
            heading: new_heading,
            speed: new_speed,
        }
    }

    /// Integrates the dynamics over `horizon` with fixed substeps of
    /// `dt`, yielding every intermediate state to `visit`. Used by the
    /// safe-interval characterization to find when a barrier crosses zero.
    pub fn rollout<F>(
        &self,
        mut state: VehicleState,
        control: Control,
        dt: Seconds,
        horizon: Seconds,
        mut visit: F,
    ) where
        F: FnMut(Seconds, VehicleState) -> bool,
    {
        let steps = (horizon.as_secs() / dt.as_secs()).ceil().max(0.0) as usize;
        for k in 1..=steps {
            state = self.step(state, control, dt);
            if !visit(Seconds::new(k as f64 * dt.as_secs()), state) {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, PI};

    const DT: Seconds = Seconds::new(0.02);

    #[test]
    fn wrap_angle_stays_in_range() {
        for k in -10..=10 {
            let a = wrap_angle(0.3 + f64::from(k) * std::f64::consts::TAU);
            assert!((a - 0.3).abs() < 1e-9, "wrap failed for k={k}: {a}");
        }
        assert!((wrap_angle(PI + 0.1) - (-PI + 0.1)).abs() < 1e-9);
    }

    #[test]
    fn straight_line_motion() {
        let model = BicycleModel::default();
        let mut s = VehicleState::new(0.0, 0.0, 0.0, 10.0);
        for _ in 0..50 {
            s = model.step(s, Control::new(0.0, 0.0), DT);
        }
        assert!(s.x > 9.0, "should travel forward: {s}");
        assert!(s.y.abs() < 1e-9, "no lateral drift: {s}");
        assert!(s.speed < 10.0, "drag slows the vehicle");
    }

    #[test]
    fn throttle_accelerates_brake_decelerates() {
        let model = BicycleModel::default();
        let s0 = VehicleState::new(0.0, 0.0, 0.0, 5.0);
        let accel = model.step(s0, Control::new(0.0, 1.0), DT);
        assert!(accel.speed > s0.speed);
        let brake = model.step(s0, Control::new(0.0, -1.0), DT);
        assert!(brake.speed < s0.speed);
    }

    #[test]
    fn speed_never_negative_and_never_exceeds_max() {
        let model = BicycleModel::default();
        let mut s = VehicleState::new(0.0, 0.0, 0.0, 0.5);
        for _ in 0..500 {
            s = model.step(s, Control::new(0.0, -1.0), DT);
            assert!(s.speed >= 0.0);
        }
        assert_eq!(s.speed, 0.0);
        let mut s = VehicleState::new(0.0, 0.0, 0.0, 0.0);
        for _ in 0..5000 {
            s = model.step(s, Control::new(0.0, 1.0), DT);
        }
        assert!(s.speed <= model.max_speed + 1e-9);
    }

    #[test]
    fn left_steer_turns_left() {
        let model = BicycleModel::default();
        let mut s = VehicleState::new(0.0, 0.0, 0.0, 8.0);
        for _ in 0..25 {
            s = model.step(s, Control::new(1.0, 0.0), DT);
        }
        assert!(s.heading > 0.05, "heading should increase: {s}");
        assert!(s.y > 0.0, "vehicle should drift left: {s}");
    }

    #[test]
    fn stationary_vehicle_does_not_turn() {
        let model = BicycleModel::default();
        let s = VehicleState::new(1.0, 2.0, 0.5, 0.0);
        let next = model.step(s, Control::new(1.0, 0.0), DT);
        assert_eq!(next.heading, s.heading);
        assert_eq!(next.x, s.x);
        assert_eq!(next.y, s.y);
    }

    #[test]
    fn control_clamps_inputs() {
        let c = Control::new(5.0, -3.0);
        assert_eq!(c.steering, 1.0);
        assert_eq!(c.throttle, -1.0);
    }

    #[test]
    fn bearing_and_distance() {
        let s = VehicleState::new(0.0, 0.0, 0.0, 1.0);
        assert!((s.distance_to(3.0, 4.0) - 5.0).abs() < 1e-12);
        assert!((s.bearing_to(0.0, 5.0) - FRAC_PI_2).abs() < 1e-12);
        assert!((s.bearing_to(5.0, 0.0)).abs() < 1e-12);
        // Heading rotates the bearing frame.
        let s = VehicleState::new(0.0, 0.0, FRAC_PI_2, 1.0);
        assert!((s.bearing_to(0.0, 5.0)).abs() < 1e-12);
    }

    #[test]
    fn rollout_visits_states_and_can_stop_early() {
        let model = BicycleModel::default();
        let s = VehicleState::new(0.0, 0.0, 0.0, 10.0);
        let mut count = 0;
        model.rollout(s, Control::coast(), DT, Seconds::new(0.2), |_, _| {
            count += 1;
            true
        });
        assert_eq!(count, 10);
        let mut count = 0;
        model.rollout(s, Control::coast(), DT, Seconds::new(0.2), |_, _| {
            count += 1;
            count < 3
        });
        assert_eq!(count, 3);
    }

    #[test]
    fn validate_rejects_bad_params() {
        let mut m = BicycleModel::default();
        assert!(m.validate().is_ok());
        m.wheelbase = 0.0;
        assert!(m.validate().is_err());
        let m = BicycleModel {
            drag: -0.1,
            ..Default::default()
        };
        assert!(m.validate().is_err());
        let m = BicycleModel {
            max_speed: f64::NAN,
            ..Default::default()
        };
        assert!(m.validate().is_err());
    }

    #[test]
    fn displays_are_informative() {
        let s = VehicleState::route_start().to_string();
        assert!(s.contains("m/s"));
        assert!(Control::new(0.5, 0.1).to_string().contains("steer"));
    }
}
