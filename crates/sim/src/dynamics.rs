//! Moving obstacles — dynamic risk beyond the paper's static scenario.
//!
//! Section III-B's φ(x, x′, u) explicitly takes the obstacle state x′; with
//! static obstacles x′ never changes between samples. This module provides
//! constant-velocity movers (crossing pedestrians, oncoming traffic) so the
//! safe-interval machinery can be exercised under genuinely evolving risk —
//! listed as an extension experiment in DESIGN.md.

use crate::world::{Obstacle, Road, World};
use seo_platform::units::Seconds;
use std::fmt;

/// An obstacle translating at constant velocity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MovingObstacle {
    /// Shape and position at `t = 0`.
    pub shape: Obstacle,
    /// Longitudinal velocity, m/s (negative = oncoming).
    pub vx: f64,
    /// Lateral velocity, m/s (crossing traffic).
    pub vy: f64,
}

impl MovingObstacle {
    /// Creates a mover.
    #[must_use]
    pub fn new(shape: Obstacle, vx: f64, vy: f64) -> Self {
        Self { shape, vx, vy }
    }

    /// A static mover (zero velocity).
    #[must_use]
    pub fn parked(shape: Obstacle) -> Self {
        Self::new(shape, 0.0, 0.0)
    }

    /// The obstacle's position at absolute time `t`.
    #[must_use]
    pub fn at(&self, t: Seconds) -> Obstacle {
        Obstacle::new(
            self.shape.x + self.vx * t.as_secs(),
            self.shape.y + self.vy * t.as_secs(),
            self.shape.radius,
        )
    }
}

impl fmt::Display for MovingObstacle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} moving ({:+.1}, {:+.1}) m/s",
            self.shape, self.vx, self.vy
        )
    }
}

/// A world whose obstacles move with constant velocities.
///
/// # Example
///
/// ```
/// use seo_sim::dynamics::{DynamicWorld, MovingObstacle};
/// use seo_sim::world::{Obstacle, Road};
/// use seo_platform::units::Seconds;
///
/// let world = DynamicWorld::new(
///     Road::default(),
///     vec![MovingObstacle::new(Obstacle::new(80.0, -5.0, 1.0), 0.0, 1.0)],
/// );
/// // The crossing obstacle reaches the centerline after 5 s.
/// let snap = world.snapshot(Seconds::new(5.0));
/// assert!((snap.obstacles()[0].y - 0.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DynamicWorld {
    road: Road,
    movers: Vec<MovingObstacle>,
}

impl DynamicWorld {
    /// Creates a dynamic world.
    #[must_use]
    pub fn new(road: Road, movers: Vec<MovingObstacle>) -> Self {
        Self { road, movers }
    }

    /// Lifts a static world into a dynamic one (all obstacles parked).
    #[must_use]
    pub fn from_static(world: &World) -> Self {
        Self {
            road: world.road(),
            movers: world
                .obstacles()
                .iter()
                .copied()
                .map(MovingObstacle::parked)
                .collect(),
        }
    }

    /// The paper-style route with one crossing pedestrian-like mover and
    /// one oncoming vehicle-like mover in the final third.
    #[must_use]
    pub fn crossing_traffic_scenario() -> Self {
        Self::new(
            Road::default(),
            vec![
                // Crossing from the right shoulder at walking-ish speed.
                MovingObstacle::new(Obstacle::new(75.0, -6.0, 0.8), 0.0, 1.2),
                // Oncoming in the adjacent lane, drifting slightly.
                MovingObstacle::new(Obstacle::new(140.0, 2.0, 1.0), -6.0, -0.05),
            ],
        )
    }

    /// The road geometry.
    #[must_use]
    pub fn road(&self) -> Road {
        self.road
    }

    /// All movers.
    #[must_use]
    pub fn movers(&self) -> &[MovingObstacle] {
        &self.movers
    }

    /// The static world as of absolute time `t`.
    #[must_use]
    pub fn snapshot(&self, t: Seconds) -> World {
        World::new(self.road, self.movers.iter().map(|m| m.at(t)).collect())
    }

    /// Writes the static world as of absolute time `t` into an existing
    /// [`World`], reusing its obstacle buffer (no heap traffic once the
    /// buffer holds `movers().len()` obstacles).
    pub fn snapshot_into(&self, t: Seconds, world: &mut World) {
        world.refill(self.road, self.movers.iter().map(|m| m.at(t)));
    }
}

impl fmt::Display for DynamicWorld {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "dynamic world with {} mover(s)", self.movers.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mover_position_is_linear_in_time() {
        let m = MovingObstacle::new(Obstacle::new(10.0, 0.0, 1.0), 2.0, -1.0);
        let at3 = m.at(Seconds::new(3.0));
        assert!((at3.x - 16.0).abs() < 1e-12);
        assert!((at3.y + 3.0).abs() < 1e-12);
        assert_eq!(at3.radius, 1.0);
    }

    #[test]
    fn parked_mover_never_moves() {
        let m = MovingObstacle::parked(Obstacle::new(5.0, 1.0, 0.5));
        assert_eq!(m.at(Seconds::new(100.0)), m.shape);
    }

    #[test]
    fn from_static_roundtrips_at_t0() {
        let world = crate::scenario::ScenarioConfig::new(3)
            .with_seed(2)
            .generate();
        let dynamic = DynamicWorld::from_static(&world);
        assert_eq!(dynamic.snapshot(Seconds::ZERO), world);
        assert_eq!(
            dynamic.snapshot(Seconds::new(9.0)),
            world,
            "parked stays put"
        );
    }

    #[test]
    fn crossing_scenario_brings_risk_over_time() {
        let world = DynamicWorld::crossing_traffic_scenario();
        let early = world.snapshot(Seconds::ZERO);
        let later = world.snapshot(Seconds::new(6.0));
        // The crossing mover starts off-road and ends on it.
        assert!(!early.road().contains_lateral(early.obstacles()[0].y));
        assert!(later.road().contains_lateral(later.obstacles()[0].y));
        // The oncoming mover closes distance.
        assert!(later.obstacles()[1].x < early.obstacles()[1].x);
    }

    #[test]
    fn snapshot_preserves_road() {
        let world = DynamicWorld::crossing_traffic_scenario();
        assert_eq!(world.snapshot(Seconds::new(2.0)).road(), world.road());
    }

    #[test]
    fn displays() {
        let world = DynamicWorld::crossing_traffic_scenario();
        assert!(world.to_string().contains("2 mover"));
        assert!(world.movers()[0].to_string().contains("m/s"));
    }

    #[test]
    fn clone_roundtrip() {
        let world = DynamicWorld::crossing_traffic_scenario();
        let back = world.clone();
        assert_eq!(back, world);
    }
}
