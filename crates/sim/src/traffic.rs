//! Parameterized traffic profiles — deterministic moving-obstacle layouts.
//!
//! [`crate::dynamics`] gives the machinery for moving obstacles; this module
//! gives it a *sweepable shape*: a [`TrafficProfile`] names a pattern
//! (crossing pedestrians or oncoming vehicles), a mover count, and a speed,
//! and expands into the same mover layout on every call — **no RNG**. That
//! determinism is what lets the plan layer treat traffic as a grid axis:
//! the same profile applied to the same static world yields the same
//! [`DynamicWorld`], so episode reports stay a pure function of
//! `(world, seed)`.

use crate::dynamics::{DynamicWorld, MovingObstacle};
use crate::world::{Obstacle, World};
use std::fmt;

/// The shape of the injected traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TrafficPattern {
    /// Pedestrian-like movers entering from the right shoulder and walking
    /// across the road (lateral velocity).
    Crossing,
    /// Vehicle-like movers approaching head-on in the adjacent lane
    /// (negative longitudinal velocity), starting past the route end.
    Oncoming,
}

impl fmt::Display for TrafficPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Crossing => f.write_str("crossing"),
            Self::Oncoming => f.write_str("oncoming"),
        }
    }
}

/// A deterministic moving-traffic layout: `count` movers of one pattern at
/// `speed_mps`, placed by index relative to the road geometry.
///
/// # Example
///
/// ```
/// use seo_sim::traffic::{TrafficPattern, TrafficProfile};
/// use seo_sim::scenario::ScenarioConfig;
///
/// let world = ScenarioConfig::new(2).with_seed(7).generate();
/// let profile = TrafficProfile::new(TrafficPattern::Crossing, 1, 1.2);
/// let dynamic = profile.apply(&world);
/// // Static obstacles ride along parked; the mover is appended.
/// assert_eq!(dynamic.movers().len(), world.obstacles().len() + 1);
/// // Determinism: the same profile expands identically every time.
/// assert_eq!(profile.apply(&world), dynamic);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrafficProfile {
    /// Mover pattern.
    pub pattern: TrafficPattern,
    /// Number of movers injected.
    pub count: usize,
    /// Mover speed, m/s (magnitude; the pattern fixes the direction).
    pub speed_mps: f64,
}

impl TrafficProfile {
    /// Creates a profile.
    #[must_use]
    pub fn new(pattern: TrafficPattern, count: usize, speed_mps: f64) -> Self {
        Self {
            pattern,
            count,
            speed_mps,
        }
    }

    /// The movers this profile injects onto `world`'s road, placed purely
    /// by index (no randomness).
    ///
    /// * `Crossing`: mover `i` starts one meter off the right shoulder,
    ///   evenly spaced over the middle half of the route, walking across at
    ///   `+speed` laterally.
    /// * `Oncoming`: mover `i` starts past the route end in the adjacent
    ///   (left) half of the road, driving back toward the vehicle at
    ///   `-speed` longitudinally.
    #[must_use]
    pub fn movers(&self, world: &World) -> Vec<MovingObstacle> {
        let road = world.road();
        let n = self.count.max(1) as f64;
        (0..self.count)
            .map(|i| {
                let frac = (i as f64 + 0.5) / n;
                match self.pattern {
                    TrafficPattern::Crossing => MovingObstacle::new(
                        Obstacle::new(
                            road.length * (0.35 + 0.5 * frac),
                            -(road.width / 2.0 + 1.0),
                            0.8,
                        ),
                        0.0,
                        self.speed_mps,
                    ),
                    TrafficPattern::Oncoming => MovingObstacle::new(
                        Obstacle::new(road.length * (1.1 + 0.5 * frac), road.width / 4.0, 1.0),
                        -self.speed_mps,
                        0.0,
                    ),
                }
            })
            .collect()
    }

    /// Lifts a static world into a dynamic one: every existing obstacle is
    /// parked in place, then this profile's movers are appended.
    #[must_use]
    pub fn apply(&self, world: &World) -> DynamicWorld {
        let mut movers: Vec<MovingObstacle> = world
            .obstacles()
            .iter()
            .copied()
            .map(MovingObstacle::parked)
            .collect();
        movers.extend(self.movers(world));
        DynamicWorld::new(world.road(), movers)
    }
}

impl fmt::Display for TrafficProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} x{} @ {} m/s",
            self.pattern, self.count, self.speed_mps
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::ScenarioConfig;
    use seo_platform::units::Seconds;

    fn world() -> World {
        ScenarioConfig::new(2).with_seed(5).generate()
    }

    #[test]
    fn crossing_movers_start_off_road_and_reach_it() {
        let w = world();
        let profile = TrafficProfile::new(TrafficPattern::Crossing, 2, 1.0);
        let dynamic = profile.apply(&w);
        let injected = &dynamic.movers()[w.obstacles().len()..];
        for mover in injected {
            assert!(!w.road().contains_lateral(mover.shape.y), "starts off-road");
            // At walking speed the shoulder is crossed within the episode
            // horizon.
            let later = mover.at(Seconds::new(10.0));
            assert!(later.y > mover.shape.y, "walks toward the road");
        }
    }

    #[test]
    fn oncoming_movers_close_distance() {
        let w = world();
        let profile = TrafficProfile::new(TrafficPattern::Oncoming, 2, 6.0);
        for mover in profile.movers(&w) {
            assert!(mover.shape.x > w.road().length, "starts past the end");
            let later = mover.at(Seconds::new(5.0));
            assert!(later.x < mover.shape.x, "drives toward the vehicle");
        }
    }

    #[test]
    fn expansion_is_deterministic_and_index_spaced() {
        let w = world();
        let profile = TrafficProfile::new(TrafficPattern::Crossing, 3, 1.5);
        let a = profile.movers(&w);
        let b = profile.movers(&w);
        assert_eq!(a, b);
        assert_eq!(a.len(), 3);
        // Distinct, monotone placements.
        assert!(a[0].shape.x < a[1].shape.x && a[1].shape.x < a[2].shape.x);
    }

    #[test]
    fn apply_parks_existing_obstacles() {
        let w = world();
        let dynamic = TrafficProfile::new(TrafficPattern::Oncoming, 1, 4.0).apply(&w);
        let snapshot = dynamic.snapshot(Seconds::new(3.0));
        // The original obstacles have not moved.
        for (before, after) in w.obstacles().iter().zip(snapshot.obstacles()) {
            assert_eq!(before, after);
        }
        assert_eq!(dynamic.movers().len(), w.obstacles().len() + 1);
    }

    #[test]
    fn zero_count_injects_nothing() {
        let w = world();
        let dynamic = TrafficProfile::new(TrafficPattern::Crossing, 0, 1.0).apply(&w);
        assert_eq!(dynamic.snapshot(Seconds::ZERO), {
            let d = crate::dynamics::DynamicWorld::from_static(&w);
            d.snapshot(Seconds::ZERO)
        });
    }

    #[test]
    fn displays() {
        let profile = TrafficProfile::new(TrafficPattern::Crossing, 2, 1.2);
        assert_eq!(profile.to_string(), "crossing x2 @ 1.2 m/s");
    }
}
