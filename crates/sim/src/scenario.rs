//! Seeded scenario generation.
//!
//! The paper's test case (Section VI-A): "a 100 m road that is populated
//! with obstacles in the final third", with the number of obstacles swept
//! over {0, 2, 4} to vary the perceived risk (Section VI-C).

use crate::world::{Obstacle, Road, World};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for generating a paper-style scenario.
///
/// # Example
///
/// ```
/// use seo_sim::scenario::ScenarioConfig;
///
/// let world = ScenarioConfig::new(4).with_seed(42).generate();
/// assert_eq!(world.obstacles().len(), 4);
/// // All obstacles live in the final third of the route.
/// for o in world.obstacles() {
///     assert!(o.x >= world.road().length * 2.0 / 3.0);
/// }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScenarioConfig {
    /// Number of obstacles to place.
    pub n_obstacles: usize,
    /// RNG seed for reproducible placement.
    pub seed: u64,
    /// Road geometry (defaults to the paper's 100 m route).
    pub road: Road,
    /// Obstacle radius, meters.
    pub obstacle_radius: f64,
    /// Fraction of the route after which obstacles may appear (the paper
    /// uses the final third, i.e. 2/3).
    pub obstacle_zone_start: f64,
    /// Maximum lateral offset magnitude for obstacle centers, meters.
    pub max_lateral_offset: f64,
}

impl ScenarioConfig {
    /// Creates a config with `n_obstacles` and paper defaults elsewhere.
    #[must_use]
    pub fn new(n_obstacles: usize) -> Self {
        Self {
            n_obstacles,
            seed: 0,
            road: Road::default(),
            obstacle_radius: 1.0,
            obstacle_zone_start: 2.0 / 3.0,
            max_lateral_offset: 2.0,
        }
    }

    /// Sets the RNG seed (builder style).
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the road (builder style).
    #[must_use]
    pub fn with_road(mut self, road: Road) -> Self {
        self.road = road;
        self
    }

    /// Sets the obstacle radius (builder style).
    #[must_use]
    pub fn with_obstacle_radius(mut self, radius: f64) -> Self {
        self.obstacle_radius = radius.max(0.0);
        self
    }

    /// Generates the world deterministically from the seed.
    ///
    /// Obstacles are spread across the obstacle zone (final third by
    /// default) with jittered longitudinal spacing and random lateral
    /// offsets, mirroring how the CARLA scenario scatters props along the
    /// route. Placement guarantees a minimum longitudinal gap of four
    /// radii so scenarios remain completable.
    #[must_use]
    pub fn generate(&self) -> World {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let zone_start = self.road.length * self.obstacle_zone_start.clamp(0.0, 1.0);
        let zone_len = (self.road.length - zone_start).max(0.0);
        let mut obstacles = Vec::with_capacity(self.n_obstacles);
        if self.n_obstacles > 0 && zone_len > 0.0 {
            let slot = zone_len / self.n_obstacles as f64;
            for i in 0..self.n_obstacles {
                let base = zone_start + slot * (i as f64 + 0.5);
                let jitter_range = (slot * 0.25).min(2.0 * self.obstacle_radius);
                let jitter = if jitter_range > 0.0 {
                    rng.gen_range(-jitter_range..=jitter_range)
                } else {
                    0.0
                };
                let lateral_cap = self
                    .max_lateral_offset
                    .min(self.road.width / 2.0 - self.obstacle_radius)
                    .max(0.0);
                let y = if lateral_cap > 0.0 {
                    rng.gen_range(-lateral_cap..=lateral_cap)
                } else {
                    0.0
                };
                obstacles.push(Obstacle::new(base + jitter, y, self.obstacle_radius));
            }
        }
        World::new(self.road, obstacles)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_obstacles_gives_empty_world() {
        let w = ScenarioConfig::new(0).generate();
        assert!(w.obstacles().is_empty());
    }

    #[test]
    fn obstacles_confined_to_final_third() {
        for n in [1usize, 2, 4, 8] {
            for seed in 0..5u64 {
                let w = ScenarioConfig::new(n).with_seed(seed).generate();
                assert_eq!(w.obstacles().len(), n);
                for o in w.obstacles() {
                    assert!(
                        o.x >= 100.0 * 2.0 / 3.0 - 1e-9,
                        "obstacle {o} before final third (n={n}, seed={seed})"
                    );
                    assert!(o.x <= 100.0 + 1e-9);
                }
            }
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = ScenarioConfig::new(4).with_seed(9).generate();
        let b = ScenarioConfig::new(4).with_seed(9).generate();
        assert_eq!(a, b);
        let c = ScenarioConfig::new(4).with_seed(10).generate();
        assert_ne!(a, c, "different seeds should differ");
    }

    #[test]
    fn obstacles_stay_on_road() {
        for seed in 0..20u64 {
            let cfg = ScenarioConfig::new(6).with_seed(seed);
            let w = cfg.generate();
            for o in w.obstacles() {
                assert!(
                    o.y.abs() + o.radius <= w.road().width / 2.0 + 1e-9,
                    "obstacle {o} pokes off-road"
                );
            }
        }
    }

    #[test]
    fn obstacles_keep_longitudinal_spacing() {
        for seed in 0..10u64 {
            let w = ScenarioConfig::new(4).with_seed(seed).generate();
            let mut xs: Vec<f64> = w.obstacles().iter().map(|o| o.x).collect();
            xs.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            for pair in xs.windows(2) {
                assert!(pair[1] - pair[0] >= 2.0, "obstacles too close: {pair:?}");
            }
        }
    }

    #[test]
    fn builder_setters() {
        let cfg = ScenarioConfig::new(1)
            .with_seed(3)
            .with_road(Road::new(50.0, 6.0))
            .with_obstacle_radius(0.5);
        assert_eq!(cfg.road.length, 50.0);
        assert_eq!(cfg.obstacle_radius, 0.5);
        let w = cfg.generate();
        assert!(w.obstacles()[0].x >= 50.0 * 2.0 / 3.0);
    }
}
