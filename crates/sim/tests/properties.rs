//! Property-based tests for the simulator invariants.

use proptest::prelude::*;
use seo_platform::units::Seconds;
use seo_sim::prelude::*;
use seo_sim::sensing::RelativeObservation;
use seo_sim::vehicle::wrap_angle;

fn control_strategy() -> impl Strategy<Value = Control> {
    (-1.0..1.0f64, -1.0..1.0f64).prop_map(|(s, t)| Control::new(s, t))
}

fn state_strategy() -> impl Strategy<Value = VehicleState> {
    (0.0..100.0f64, -4.0..4.0f64, -3.0..3.0f64, 0.0..15.0f64)
        .prop_map(|(x, y, h, v)| VehicleState::new(x, y, h, v))
}

proptest! {
    #[test]
    fn speed_stays_in_physical_bounds(
        state in state_strategy(),
        controls in proptest::collection::vec(control_strategy(), 1..50),
    ) {
        let model = BicycleModel::default();
        let mut s = state;
        for c in controls {
            s = model.step(s, c, Seconds::from_millis(20.0));
            prop_assert!(s.speed >= 0.0);
            prop_assert!(s.speed <= model.max_speed + 1e-9);
            prop_assert!(s.heading > -std::f64::consts::PI - 1e-9);
            prop_assert!(s.heading <= std::f64::consts::PI + 1e-9);
        }
    }

    #[test]
    fn displacement_bounded_by_speed(state in state_strategy(), c in control_strategy()) {
        let model = BicycleModel::default();
        let dt = Seconds::from_millis(20.0);
        let next = model.step(state, c, dt);
        let moved = state.distance_to(next.x, next.y);
        // Displacement cannot exceed max achievable speed times dt.
        let bound = model.max_speed * dt.as_secs() + 1e-9;
        prop_assert!(moved <= bound, "moved {moved} > bound {bound}");
    }

    #[test]
    fn wrap_angle_idempotent_and_in_range(theta in -100.0..100.0f64) {
        let w = wrap_angle(theta);
        prop_assert!(w > -std::f64::consts::PI - 1e-12);
        prop_assert!(w <= std::f64::consts::PI + 1e-12);
        prop_assert!((wrap_angle(w) - w).abs() < 1e-12);
        // Same point on the unit circle.
        prop_assert!((w.sin() - theta.sin()).abs() < 1e-6);
        prop_assert!((w.cos() - theta.cos()).abs() < 1e-6);
    }

    #[test]
    fn scan_is_saturated_and_nonnegative(
        n in 1usize..5,
        seed in 0u64..50,
        state in state_strategy(),
    ) {
        let world = ScenarioConfig::new(n).with_seed(seed).generate();
        let scanner = RangeScanner::new(16, 120.0_f64.to_radians(), 40.0);
        for d in scanner.scan(&world, &state) {
            prop_assert!(d >= 0.0);
            prop_assert!(d <= 40.0);
        }
    }

    #[test]
    fn observation_distance_matches_world_query(
        n in 0usize..5,
        seed in 0u64..50,
        state in state_strategy(),
    ) {
        let world = ScenarioConfig::new(n).with_seed(seed).generate();
        let obs = RelativeObservation::observe(&world, &state);
        let d = world.nearest_obstacle_distance(&state);
        if d.is_finite() {
            prop_assert!((obs.distance - d).abs() < 1e-9);
        } else {
            prop_assert!(!obs.has_obstacle());
        }
    }

    #[test]
    fn episodes_always_terminate(
        n in 0usize..5,
        seed in 0u64..20,
        c in control_strategy(),
    ) {
        let world = ScenarioConfig::new(n).with_seed(seed).generate();
        let mut ep = Episode::new(world, EpisodeConfig::default().with_max_steps(500));
        let mut guard = 0usize;
        while ep.status() == EpisodeStatus::Running {
            ep.step(c);
            guard += 1;
            prop_assert!(guard <= 501, "episode failed to terminate");
        }
        prop_assert!(ep.status().is_terminal());
    }
}
