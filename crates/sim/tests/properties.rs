//! Property-based tests for the simulator invariants, driven by a seeded
//! generator loop.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use seo_platform::units::Seconds;
use seo_sim::prelude::*;
use seo_sim::sensing::RelativeObservation;
use seo_sim::vehicle::wrap_angle;

const CASES: usize = 150;

fn control(rng: &mut StdRng) -> Control {
    Control::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0))
}

fn state(rng: &mut StdRng) -> VehicleState {
    VehicleState::new(
        rng.gen_range(0.0..100.0),
        rng.gen_range(-4.0..4.0),
        rng.gen_range(-3.0..3.0),
        rng.gen_range(0.0..15.0),
    )
}

#[test]
fn speed_stays_in_physical_bounds() {
    let mut rng = StdRng::seed_from_u64(30);
    let model = BicycleModel::default();
    for _ in 0..CASES {
        let mut s = state(&mut rng);
        let steps = rng.gen_range(1usize..50);
        for _ in 0..steps {
            s = model.step(s, control(&mut rng), Seconds::from_millis(20.0));
            assert!(s.speed >= 0.0);
            assert!(s.speed <= model.max_speed + 1e-9);
            assert!(s.heading > -std::f64::consts::PI - 1e-9);
            assert!(s.heading <= std::f64::consts::PI + 1e-9);
        }
    }
}

#[test]
fn displacement_bounded_by_speed() {
    let mut rng = StdRng::seed_from_u64(31);
    let model = BicycleModel::default();
    let dt = Seconds::from_millis(20.0);
    for _ in 0..CASES {
        let s = state(&mut rng);
        let next = model.step(s, control(&mut rng), dt);
        let moved = s.distance_to(next.x, next.y);
        // Displacement cannot exceed max achievable speed times dt.
        let bound = model.max_speed * dt.as_secs() + 1e-9;
        assert!(moved <= bound, "moved {moved} > bound {bound}");
    }
}

#[test]
fn wrap_angle_idempotent_and_in_range() {
    let mut rng = StdRng::seed_from_u64(32);
    for _ in 0..CASES {
        let theta = rng.gen_range(-100.0..100.0);
        let w = wrap_angle(theta);
        assert!(w > -std::f64::consts::PI - 1e-12);
        assert!(w <= std::f64::consts::PI + 1e-12);
        assert!((wrap_angle(w) - w).abs() < 1e-12);
        // Same point on the unit circle.
        assert!((w.sin() - theta.sin()).abs() < 1e-6);
        assert!((w.cos() - theta.cos()).abs() < 1e-6);
    }
}

#[test]
fn scan_is_saturated_and_nonnegative() {
    let mut rng = StdRng::seed_from_u64(33);
    let scanner = RangeScanner::new(16, 120.0_f64.to_radians(), 40.0);
    for _ in 0..CASES {
        let n = rng.gen_range(1usize..5);
        let seed = rng.gen_range(0u64..50);
        let world = ScenarioConfig::new(n).with_seed(seed).generate();
        let s = state(&mut rng);
        for d in scanner.scan(&world, &s) {
            assert!(d >= 0.0);
            assert!(d <= 40.0);
        }
    }
}

#[test]
fn observation_distance_matches_world_query() {
    let mut rng = StdRng::seed_from_u64(34);
    for _ in 0..CASES {
        let n = rng.gen_range(0usize..5);
        let seed = rng.gen_range(0u64..50);
        let world = ScenarioConfig::new(n).with_seed(seed).generate();
        let s = state(&mut rng);
        let obs = RelativeObservation::observe(&world, &s);
        let d = world.nearest_obstacle_distance(&s);
        if d.is_finite() {
            assert!((obs.distance - d).abs() < 1e-9);
        } else {
            assert!(!obs.has_obstacle());
        }
    }
}

#[test]
fn episodes_always_terminate() {
    let mut rng = StdRng::seed_from_u64(35);
    for _ in 0..40 {
        let n = rng.gen_range(0usize..5);
        let seed = rng.gen_range(0u64..20);
        let c = control(&mut rng);
        let world = ScenarioConfig::new(n).with_seed(seed).generate();
        let mut ep = Episode::new(world, EpisodeConfig::default().with_max_steps(500));
        let mut guard = 0usize;
        while ep.status() == EpisodeStatus::Running {
            ep.step(c);
            guard += 1;
            assert!(guard <= 501, "episode failed to terminate");
        }
        assert!(ep.status().is_terminal());
    }
}
