//! Property-based tests for the platform units and ledger invariants,
//! driven by a seeded generator loop.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use seo_platform::energy::{EnergyCategory, EnergyLedger};
use seo_platform::units::{Bits, BitsPerSecond, Joules, Seconds, Watts};

const CASES: usize = 500;

fn finite_nonneg(rng: &mut StdRng) -> f64 {
    rng.gen_range(0.0..1e9)
}

#[test]
fn energy_commutes() {
    let mut rng = StdRng::seed_from_u64(10);
    for _ in 0..CASES {
        let t = finite_nonneg(&mut rng);
        let p = finite_nonneg(&mut rng);
        let a = Seconds::new(t) * Watts::new(p);
        let b = Watts::new(p) * Seconds::new(t);
        assert_eq!(a, b);
    }
}

#[test]
fn energy_division_inverts_multiplication() {
    let mut rng = StdRng::seed_from_u64(11);
    for _ in 0..CASES {
        let t = rng.gen_range(1e-9..1e6);
        let p = rng.gen_range(1e-9..1e6);
        let e = Seconds::new(t) * Watts::new(p);
        let p_back = e / Seconds::new(t);
        let t_back = e / Watts::new(p);
        assert!((p_back.as_watts() - p).abs() <= 1e-9 * p.max(1.0));
        assert!((t_back.as_secs() - t).abs() <= 1e-9 * t.max(1.0));
    }
}

#[test]
fn transmission_time_scales_inversely_with_rate() {
    let mut rng = StdRng::seed_from_u64(12);
    for _ in 0..CASES {
        let payload = rng.gen_range(1.0..1e9);
        let rate = rng.gen_range(1.0..1e9);
        let t1 = Bits::new(payload) / BitsPerSecond::new(rate);
        let t2 = Bits::new(payload) / BitsPerSecond::new(rate * 2.0);
        assert!(t2.as_secs() <= t1.as_secs());
        assert!((t1.as_secs() - 2.0 * t2.as_secs()).abs() <= 1e-9 * t1.as_secs().max(1.0));
    }
}

#[test]
fn unit_addition_is_commutative_and_monotone() {
    let mut rng = StdRng::seed_from_u64(13);
    for _ in 0..CASES {
        let a = finite_nonneg(&mut rng);
        let b = finite_nonneg(&mut rng);
        let x = Joules::new(a) + Joules::new(b);
        let y = Joules::new(b) + Joules::new(a);
        assert_eq!(x, y);
        assert!(x.as_joules() >= a.max(b) - 1e-12);
    }
}

#[test]
fn ledger_total_equals_category_sum() {
    let mut rng = StdRng::seed_from_u64(14);
    for _ in 0..CASES {
        let mut ledger = EnergyLedger::new();
        ledger.record(
            EnergyCategory::Compute,
            Joules::new(finite_nonneg(&mut rng)),
        );
        ledger.record(
            EnergyCategory::Transmission,
            Joules::new(finite_nonneg(&mut rng)),
        );
        ledger.record(
            EnergyCategory::SensorMeasurement,
            Joules::new(finite_nonneg(&mut rng)),
        );
        ledger.record(
            EnergyCategory::SensorMechanical,
            Joules::new(finite_nonneg(&mut rng)),
        );
        let sum: f64 = EnergyCategory::ALL
            .iter()
            .map(|cat| ledger.by_category(*cat).as_joules())
            .sum();
        assert!((ledger.total().as_joules() - sum).abs() <= 1e-9 * sum.max(1.0));
    }
}

#[test]
fn ledger_merge_adds_totals() {
    let mut rng = StdRng::seed_from_u64(15);
    for _ in 0..CASES {
        let a = finite_nonneg(&mut rng);
        let b = finite_nonneg(&mut rng);
        let mut x = EnergyLedger::new();
        x.record(EnergyCategory::Compute, Joules::new(a));
        let mut y = EnergyLedger::new();
        y.record(EnergyCategory::Transmission, Joules::new(b));
        let mut merged = x;
        merged.merge(&y);
        let expected = a + b;
        assert!((merged.total().as_joules() - expected).abs() <= 1e-9 * expected.max(1.0));
    }
}

#[test]
fn gain_is_bounded_above_by_one() {
    let mut rng = StdRng::seed_from_u64(16);
    for _ in 0..CASES {
        let opt = finite_nonneg(&mut rng);
        let base = rng.gen_range(1e-9..1e9);
        let mut o = EnergyLedger::new();
        o.record(EnergyCategory::Compute, Joules::new(opt));
        let mut bl = EnergyLedger::new();
        bl.record(EnergyCategory::Compute, Joules::new(base));
        let gain = o.gain_over(&bl).expect("nonzero baseline");
        assert!(gain <= 1.0);
        // Gain + normalized == 1.
        let norm = o.normalized_against(&bl).expect("nonzero baseline");
        assert!((gain + norm - 1.0).abs() <= 1e-9);
    }
}

#[test]
fn clamp_stays_in_range() {
    let mut rng = StdRng::seed_from_u64(17);
    for _ in 0..CASES {
        let v = rng.gen_range(-1e9..1e9);
        let lo = rng.gen_range(0.0..10.0);
        let width = rng.gen_range(0.0..10.0);
        let clamped = Seconds::new(v).clamp(Seconds::new(lo), Seconds::new(lo + width));
        assert!(clamped.as_secs() >= lo);
        assert!(clamped.as_secs() <= lo + width);
    }
}
