//! Property-based tests for the platform units and ledger invariants.

use proptest::prelude::*;
use seo_platform::energy::{EnergyCategory, EnergyLedger};
use seo_platform::units::{Bits, BitsPerSecond, Joules, Seconds, Watts};

fn finite_nonneg() -> impl Strategy<Value = f64> {
    0.0..1e9f64
}

proptest! {
    #[test]
    fn energy_commutes(t in finite_nonneg(), p in finite_nonneg()) {
        let a = Seconds::new(t) * Watts::new(p);
        let b = Watts::new(p) * Seconds::new(t);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn energy_division_inverts_multiplication(t in 1e-9..1e6f64, p in 1e-9..1e6f64) {
        let e = Seconds::new(t) * Watts::new(p);
        let p_back = e / Seconds::new(t);
        let t_back = e / Watts::new(p);
        prop_assert!((p_back.as_watts() - p).abs() <= 1e-9 * p.max(1.0));
        prop_assert!((t_back.as_secs() - t).abs() <= 1e-9 * t.max(1.0));
    }

    #[test]
    fn transmission_time_scales_inversely_with_rate(
        payload in 1.0..1e9f64,
        rate in 1.0..1e9f64,
    ) {
        let t1 = Bits::new(payload) / BitsPerSecond::new(rate);
        let t2 = Bits::new(payload) / BitsPerSecond::new(rate * 2.0);
        prop_assert!(t2.as_secs() <= t1.as_secs());
        prop_assert!((t1.as_secs() - 2.0 * t2.as_secs()).abs() <= 1e-9 * t1.as_secs().max(1.0));
    }

    #[test]
    fn unit_addition_is_commutative_and_monotone(a in finite_nonneg(), b in finite_nonneg()) {
        let x = Joules::new(a) + Joules::new(b);
        let y = Joules::new(b) + Joules::new(a);
        prop_assert_eq!(x, y);
        prop_assert!(x.as_joules() >= a.max(b) - 1e-12);
    }

    #[test]
    fn ledger_total_equals_category_sum(
        c in finite_nonneg(),
        tx in finite_nonneg(),
        meas in finite_nonneg(),
        mech in finite_nonneg(),
    ) {
        let mut ledger = EnergyLedger::new();
        ledger.record(EnergyCategory::Compute, Joules::new(c));
        ledger.record(EnergyCategory::Transmission, Joules::new(tx));
        ledger.record(EnergyCategory::SensorMeasurement, Joules::new(meas));
        ledger.record(EnergyCategory::SensorMechanical, Joules::new(mech));
        let sum: f64 = EnergyCategory::ALL
            .iter()
            .map(|cat| ledger.by_category(*cat).as_joules())
            .sum();
        prop_assert!((ledger.total().as_joules() - sum).abs() <= 1e-9 * sum.max(1.0));
    }

    #[test]
    fn ledger_merge_adds_totals(a in finite_nonneg(), b in finite_nonneg()) {
        let mut x = EnergyLedger::new();
        x.record(EnergyCategory::Compute, Joules::new(a));
        let mut y = EnergyLedger::new();
        y.record(EnergyCategory::Transmission, Joules::new(b));
        let mut merged = x;
        merged.merge(&y);
        let expected = a + b;
        prop_assert!((merged.total().as_joules() - expected).abs() <= 1e-9 * expected.max(1.0));
    }

    #[test]
    fn gain_is_bounded_above_by_one(opt in finite_nonneg(), base in 1e-9..1e9f64) {
        let mut o = EnergyLedger::new();
        o.record(EnergyCategory::Compute, Joules::new(opt));
        let mut bl = EnergyLedger::new();
        bl.record(EnergyCategory::Compute, Joules::new(base));
        let gain = o.gain_over(&bl).expect("nonzero baseline");
        prop_assert!(gain <= 1.0);
        // Gain + normalized == 1.
        let norm = o.normalized_against(&bl).expect("nonzero baseline");
        prop_assert!((gain + norm - 1.0).abs() <= 1e-9);
    }

    #[test]
    fn clamp_stays_in_range(v in -1e9..1e9f64, lo in 0.0..10.0f64, width in 0.0..10.0f64) {
        let clamped = Seconds::new(v).clamp(Seconds::new(lo), Seconds::new(lo + width));
        prop_assert!(clamped.as_secs() >= lo);
        prop_assert!(clamped.as_secs() <= lo + width);
    }
}
