//! Per-model compute characterizations.
//!
//! SEO treats each sensory processing model (the `N_i` of the paper) as a
//! black box with a measured execution latency `T_N` and execution power
//! `P_N`. The paper benchmarks ResNet-152 on an Nvidia Drive PX2 with
//! TensorRT and reports 17 ms / 7 W; that preset is available as
//! [`ComputeProfile::px2_resnet152`].

use crate::error::PlatformError;
use crate::units::{Joules, Seconds, Watts};
use std::fmt;

/// Latency/power characterization of one processing model on one platform.
///
/// # Example
///
/// ```
/// use seo_platform::compute::ComputeProfile;
/// use seo_platform::units::{Seconds, Watts};
///
/// let profile = ComputeProfile::new(
///     "yolo-nano",
///     Seconds::from_millis(6.0),
///     Watts::new(3.5),
/// )?;
/// assert!((profile.energy_per_inference().as_joules() - 0.021).abs() < 1e-12);
/// # Ok::<(), seo_platform::PlatformError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ComputeProfile {
    name: String,
    latency: Seconds,
    power: Watts,
}

impl ComputeProfile {
    /// Creates a characterization from a measured latency and power.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::InvalidQuantity`] if `latency` or `power` is
    /// negative or non-finite.
    pub fn new(
        name: impl Into<String>,
        latency: Seconds,
        power: Watts,
    ) -> Result<Self, PlatformError> {
        if !latency.is_valid() {
            return Err(PlatformError::InvalidQuantity {
                field: "latency",
                value: latency.as_secs(),
            });
        }
        if !power.is_valid() {
            return Err(PlatformError::InvalidQuantity {
                field: "power",
                value: power.as_watts(),
            });
        }
        Ok(Self {
            name: name.into(),
            latency,
            power,
        })
    }

    /// The paper's measured characterization: ResNet-152 on an Nvidia Drive
    /// PX2 under TensorRT — 17 ms execution latency, 7 W execution power.
    #[must_use]
    pub fn px2_resnet152() -> Self {
        Self {
            name: "resnet152-px2-tensorrt".to_owned(),
            latency: Seconds::from_millis(17.0),
            power: Watts::new(7.0),
        }
    }

    /// Model name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Execution latency `T_N` of one full inference.
    #[must_use]
    pub fn latency(&self) -> Seconds {
        self.latency
    }

    /// Execution power `P_N` while the inference runs.
    #[must_use]
    pub fn power(&self) -> Watts {
        self.power
    }

    /// Energy consumed by one full local inference, `E_N = T_N * P_N`.
    #[must_use]
    pub fn energy_per_inference(&self) -> Joules {
        self.latency * self.power
    }

    /// Energy consumed by a *gated* (scaled-down) inference at gating level
    /// `g ∈ [0, 1]`, where `g = 1` is the full model and `g = 0` skips
    /// computation entirely.
    ///
    /// The paper's motivational example (Fig. 1) gates at the "50 % Gating"
    /// level, i.e. `g = 0.5`.
    ///
    /// # Panics
    ///
    /// Panics if `level` is outside `[0, 1]` (a configuration bug).
    #[must_use]
    pub fn energy_at_gating_level(&self, level: f64) -> Joules {
        assert!(
            (0.0..=1.0).contains(&level),
            "gating level {level} outside [0, 1]"
        );
        self.energy_per_inference() * level
    }

    /// Returns a copy with latency scaled by `factor` (e.g. to model a
    /// faster accelerator or a larger model variant).
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::InvalidQuantity`] if the scaled latency is
    /// invalid.
    pub fn with_latency_scaled(&self, factor: f64) -> Result<Self, PlatformError> {
        Self::new(self.name.clone(), self.latency * factor, self.power)
    }
}

impl fmt::Display for ComputeProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({:.1} ms @ {:.1} W = {:.4} J/inf)",
            self.name,
            self.latency.as_millis(),
            self.power.as_watts(),
            self.energy_per_inference().as_joules()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn px2_preset_matches_paper() {
        let p = ComputeProfile::px2_resnet152();
        assert_eq!(p.latency(), Seconds::from_millis(17.0));
        assert_eq!(p.power(), Watts::new(7.0));
        assert!((p.energy_per_inference().as_joules() - 0.119).abs() < 1e-12);
    }

    #[test]
    fn rejects_negative_latency() {
        let err = ComputeProfile::new("m", Seconds::new(-0.01), Watts::new(1.0)).unwrap_err();
        assert_eq!(
            err,
            PlatformError::InvalidQuantity {
                field: "latency",
                value: -0.01
            }
        );
    }

    #[test]
    fn rejects_nan_power() {
        let err = ComputeProfile::new("m", Seconds::new(0.01), Watts::new(f64::NAN)).unwrap_err();
        assert!(matches!(
            err,
            PlatformError::InvalidQuantity { field: "power", .. }
        ));
    }

    #[test]
    fn gating_level_scales_energy() {
        let p = ComputeProfile::px2_resnet152();
        let half = p.energy_at_gating_level(0.5);
        assert!((half.as_joules() - 0.0595).abs() < 1e-12);
        assert_eq!(p.energy_at_gating_level(0.0), Joules::ZERO);
        assert_eq!(p.energy_at_gating_level(1.0), p.energy_per_inference());
    }

    #[test]
    #[should_panic(expected = "gating level")]
    fn gating_level_out_of_range_panics() {
        let _ = ComputeProfile::px2_resnet152().energy_at_gating_level(1.5);
    }

    #[test]
    fn latency_scaling() {
        let p = ComputeProfile::px2_resnet152()
            .with_latency_scaled(0.5)
            .expect("valid");
        assert_eq!(p.latency(), Seconds::from_millis(8.5));
        assert!(ComputeProfile::px2_resnet152()
            .with_latency_scaled(-1.0)
            .is_err());
    }

    #[test]
    fn display_contains_name_and_numbers() {
        let s = ComputeProfile::px2_resnet152().to_string();
        assert!(s.contains("resnet152"));
        assert!(s.contains("17.0 ms"));
    }

    #[test]
    fn clone_roundtrip() {
        let p = ComputeProfile::px2_resnet152();
        let back = p.clone();
        assert_eq!(back, p);
    }
}
