//! # seo-platform
//!
//! Edge-platform characterization substrate for the SEO framework
//! (DAC 2023, arXiv:2302.12493).
//!
//! The SEO scheduler never executes real neural networks; it schedules their
//! *costs*. This crate provides everything SEO needs to reason about a
//! heterogeneous edge platform:
//!
//! * [`units`] — dimension-safe newtypes ([`Seconds`], [`Watts`], [`Joules`],
//!   [`Hertz`], [`Bits`], [`BitsPerSecond`]) with checked arithmetic, so that
//!   latency/power/energy bookkeeping cannot silently mix units.
//! * [`compute`] — per-model compute characterizations (execution latency and
//!   power), including the Nvidia Drive PX2 + TensorRT ResNet-152 preset the
//!   paper measured (17 ms, 7 W).
//! * [`sensor`] — industry sensor specifications with the paper's
//!   measurement/mechanical power split (ZED stereo camera, Navtech
//!   CTS350-X radar, Velodyne HDL-32e LiDAR).
//! * [`energy`] — an [`EnergyLedger`] that attributes consumed energy to
//!   categories (compute, radio, sensor measurement, sensor mechanical) and
//!   computes efficiency gains against a baseline.
//!
//! # Example
//!
//! ```
//! use seo_platform::compute::ComputeProfile;
//! use seo_platform::units::{Seconds, Watts};
//!
//! let resnet = ComputeProfile::px2_resnet152();
//! assert_eq!(resnet.latency(), Seconds::from_millis(17.0));
//! assert_eq!(resnet.power(), Watts::new(7.0));
//! // One full inference on the PX2 costs latency x power joules.
//! assert!((resnet.energy_per_inference().as_joules() - 0.119).abs() < 1e-12);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compute;
pub mod energy;
pub mod error;
pub mod range;
pub mod sensor;
pub mod units;

pub use compute::ComputeProfile;
pub use energy::{EnergyCategory, EnergyLedger};
pub use error::PlatformError;
pub use range::RangeModel;
pub use sensor::SensorSpec;
pub use units::{Bits, BitsPerSecond, Hertz, Joules, Seconds, Watts};
