//! Error type for platform characterization.

use std::error::Error;
use std::fmt;

/// Errors raised while building or using platform characterizations.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum PlatformError {
    /// A physical quantity was non-finite or negative.
    InvalidQuantity {
        /// Name of the offending field.
        field: &'static str,
        /// The raw offending value.
        value: f64,
    },
    /// A ledger gain computation was requested against a zero-energy baseline.
    ZeroBaseline,
}

impl fmt::Display for PlatformError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::InvalidQuantity { field, value } => {
                write!(
                    f,
                    "invalid value {value} for {field}: must be finite and non-negative"
                )
            }
            Self::ZeroBaseline => write!(f, "baseline energy is zero, gains are undefined"),
        }
    }
}

impl Error for PlatformError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = PlatformError::InvalidQuantity {
            field: "latency",
            value: -1.0,
        };
        assert!(e.to_string().contains("latency"));
        assert!(PlatformError::ZeroBaseline.to_string().contains("baseline"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<PlatformError>();
    }
}
