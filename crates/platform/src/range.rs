//! Driving-range impact of the compute platform.
//!
//! The paper's introduction motivates energy management with the
//! observation that "a power-hungry computing platform can worsen the
//! performance of other broader system functionalities, as in how an ADS
//! can cause reductions in a vehicle's driving range by a factor reaching
//! 12 %" (Lin et al., ASPLOS'18). This module closes the loop: given the
//! vehicle's traction energy budget and the ADS platform's average power,
//! it converts the energy gains SEO achieves back into recovered driving
//! range.

use crate::error::PlatformError;
use crate::units::{Joules, Seconds, Watts};
use std::fmt;

/// Electric-vehicle energy model for range-impact analysis.
///
/// # Example
///
/// ```
/// use seo_platform::range::RangeModel;
/// use seo_platform::units::Watts;
///
/// let ev = RangeModel::compact_ev()?;
/// // An always-on 1 kW ADS platform costs a few percent of range.
/// let loss = ev.range_loss_fraction(Watts::new(1000.0));
/// assert!(loss > 0.02 && loss < 0.10, "loss was {loss}");
/// # Ok::<(), seo_platform::PlatformError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RangeModel {
    /// Usable battery energy, joules.
    battery_energy: Joules,
    /// Traction power draw at the nominal cruising speed, watts.
    traction_power: Watts,
    /// Nominal cruising speed, m/s.
    cruise_speed: f64,
}

impl RangeModel {
    /// Creates a range model.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::InvalidQuantity`] when any quantity is
    /// non-positive or non-finite.
    pub fn new(
        battery_energy: Joules,
        traction_power: Watts,
        cruise_speed: f64,
    ) -> Result<Self, PlatformError> {
        if !(battery_energy.is_valid() && battery_energy.as_joules() > 0.0) {
            return Err(PlatformError::InvalidQuantity {
                field: "battery_energy",
                value: battery_energy.as_joules(),
            });
        }
        if !(traction_power.is_valid() && traction_power.as_watts() > 0.0) {
            return Err(PlatformError::InvalidQuantity {
                field: "traction_power",
                value: traction_power.as_watts(),
            });
        }
        if !(cruise_speed.is_finite() && cruise_speed > 0.0) {
            return Err(PlatformError::InvalidQuantity {
                field: "cruise_speed",
                value: cruise_speed,
            });
        }
        Ok(Self {
            battery_energy,
            traction_power,
            cruise_speed,
        })
    }

    /// A compact EV: 40 kWh usable battery, 12 kW traction draw at a
    /// 20 m/s (72 km/h) cruise.
    ///
    /// # Errors
    ///
    /// Never fails in practice; kept fallible for API uniformity.
    pub fn compact_ev() -> Result<Self, PlatformError> {
        Self::new(Joules::new(40.0 * 3.6e6), Watts::new(12_000.0), 20.0)
    }

    /// Usable battery energy.
    #[must_use]
    pub fn battery_energy(&self) -> Joules {
        self.battery_energy
    }

    /// Driving range with no ADS platform running, meters.
    #[must_use]
    pub fn base_range_meters(&self) -> f64 {
        let driving_time = self.battery_energy / self.traction_power;
        driving_time.as_secs() * self.cruise_speed
    }

    /// Driving range with an ADS platform drawing `platform_power`
    /// continuously, meters.
    #[must_use]
    pub fn range_with_platform_meters(&self, platform_power: Watts) -> f64 {
        let total = self.traction_power + platform_power.max(Watts::ZERO);
        let driving_time = self.battery_energy / total;
        driving_time.as_secs() * self.cruise_speed
    }

    /// Fraction of range lost to the platform (the paper's "up to 12 %"
    /// motivates heavy multi-GPU platforms).
    #[must_use]
    pub fn range_loss_fraction(&self, platform_power: Watts) -> f64 {
        1.0 - self.range_with_platform_meters(platform_power) / self.base_range_meters()
    }

    /// Range recovered by reducing the platform's average power from
    /// `before` to `after` (e.g. by SEO's energy gains), meters.
    #[must_use]
    pub fn range_recovered_meters(&self, before: Watts, after: Watts) -> f64 {
        self.range_with_platform_meters(after) - self.range_with_platform_meters(before)
    }

    /// Converts an episode's measured energy pair into average platform
    /// powers and reports the recovered range fraction.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::InvalidQuantity`] when `duration` is
    /// non-positive.
    pub fn recovered_range_fraction(
        &self,
        baseline_energy: Joules,
        optimized_energy: Joules,
        duration: Seconds,
    ) -> Result<f64, PlatformError> {
        if !(duration.is_valid() && duration.as_secs() > 0.0) {
            return Err(PlatformError::InvalidQuantity {
                field: "duration",
                value: duration.as_secs(),
            });
        }
        let before = baseline_energy / duration;
        let after = optimized_energy / duration;
        Ok(self.range_recovered_meters(before, after) / self.base_range_meters())
    }
}

impl fmt::Display for RangeModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "EV: {:.0} kWh battery, {:.1} kW traction @ {:.0} m/s ({:.0} km base range)",
            self.battery_energy.as_joules() / 3.6e6,
            self.traction_power.as_watts() / 1e3,
            self.cruise_speed,
            self.base_range_meters() / 1e3
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_ev_base_range_is_plausible() {
        let ev = RangeModel::compact_ev().expect("valid");
        let km = ev.base_range_meters() / 1e3;
        assert!((200.0..300.0).contains(&km), "base range {km} km");
    }

    #[test]
    fn heavy_platform_approaches_paper_figure() {
        // The ASPLOS'18 figure: multi-GPU ADS platforms (kWs of draw) can
        // cost up to ~12 % of range.
        let ev = RangeModel::compact_ev().expect("valid");
        let loss = ev.range_loss_fraction(Watts::new(1_600.0));
        assert!(
            (0.10..0.14).contains(&loss),
            "a 1.6 kW platform should cost ~12 %, got {loss}"
        );
    }

    #[test]
    fn zero_platform_power_costs_nothing() {
        let ev = RangeModel::compact_ev().expect("valid");
        assert!((ev.range_loss_fraction(Watts::ZERO)).abs() < 1e-12);
        assert_eq!(
            ev.range_with_platform_meters(Watts::ZERO),
            ev.base_range_meters()
        );
    }

    #[test]
    fn range_loss_is_monotone_in_power() {
        let ev = RangeModel::compact_ev().expect("valid");
        let mut last = -1.0;
        for p in [0.0, 100.0, 500.0, 1_000.0, 5_000.0] {
            let loss = ev.range_loss_fraction(Watts::new(p));
            assert!(loss > last, "loss must grow with power");
            last = loss;
        }
    }

    #[test]
    fn recovered_range_from_energy_gain() {
        let ev = RangeModel::compact_ev().expect("valid");
        // 14 W baseline platform (two detectors at full blast) reduced by
        // 60 % over a 15 s episode.
        let duration = Seconds::new(15.0);
        let baseline = Watts::new(14.0) * duration;
        let optimized = baseline * 0.4;
        let recovered = ev
            .recovered_range_fraction(baseline, optimized, duration)
            .expect("positive duration");
        assert!(recovered > 0.0);
        assert!(recovered < 0.01, "a 14 W platform is a small range factor");
    }

    #[test]
    fn recovery_is_zero_when_nothing_changes() {
        let ev = RangeModel::compact_ev().expect("valid");
        let e = Joules::new(100.0);
        let r = ev
            .recovered_range_fraction(e, e, Seconds::new(10.0))
            .expect("ok");
        assert!(r.abs() < 1e-12);
    }

    #[test]
    fn invalid_inputs_rejected() {
        assert!(RangeModel::new(Joules::ZERO, Watts::new(1.0), 1.0).is_err());
        assert!(RangeModel::new(Joules::new(1.0), Watts::ZERO, 1.0).is_err());
        assert!(RangeModel::new(Joules::new(1.0), Watts::new(1.0), 0.0).is_err());
        let ev = RangeModel::compact_ev().expect("valid");
        assert!(ev
            .recovered_range_fraction(Joules::new(1.0), Joules::new(1.0), Seconds::ZERO)
            .is_err());
    }

    #[test]
    fn display_shows_km() {
        let ev = RangeModel::compact_ev().expect("valid");
        assert!(ev.to_string().contains("km base range"));
    }
}
