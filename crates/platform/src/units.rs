//! Dimension-safe physical unit newtypes.
//!
//! All quantities flowing through SEO (latencies, deadlines, powers, energies,
//! data rates) are wrapped in newtypes so the type system rejects unit
//! confusion ([C-NEWTYPE]). Each type is a thin `f64` wrapper with only the
//! physically meaningful operators implemented: e.g. `Seconds * Watts ->
//! Joules`, `Bits / BitsPerSecond -> Seconds`.
//!
//! All constructors accept non-finite input but the [`is_valid`] helpers and
//! the consuming crates treat NaN/∞ as invalid configuration.
//!
//! [`is_valid`]: Seconds::is_valid
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

macro_rules! unit_newtype {
    ($(#[$doc:meta])* $name:ident, $unit:literal, $as_fn:ident) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
        pub struct $name(f64);

        impl $name {
            /// Zero quantity.
            pub const ZERO: Self = Self(0.0);

            /// Creates a new quantity from a raw value in base units.
            #[must_use]
            pub const fn new(value: f64) -> Self {
                Self(value)
            }

            /// Returns the raw value in base units.
            #[must_use]
            pub const fn $as_fn(self) -> f64 {
                self.0
            }

            /// Returns `true` when the value is finite and non-negative.
            ///
            /// Most physical quantities in SEO (latencies, powers, energies,
            /// payload sizes) are only meaningful when non-negative.
            #[must_use]
            pub fn is_valid(self) -> bool {
                self.0.is_finite() && self.0 >= 0.0
            }

            /// Returns the larger of two quantities.
            #[must_use]
            pub fn max(self, other: Self) -> Self {
                Self(self.0.max(other.0))
            }

            /// Returns the smaller of two quantities.
            #[must_use]
            pub fn min(self, other: Self) -> Self {
                Self(self.0.min(other.0))
            }

            /// Clamps the quantity into `[lo, hi]`.
            ///
            /// # Panics
            ///
            /// Panics if `lo > hi`.
            #[must_use]
            pub fn clamp(self, lo: Self, hi: Self) -> Self {
                Self(self.0.clamp(lo.0, hi.0))
            }

            /// Absolute value.
            #[must_use]
            pub fn abs(self) -> Self {
                Self(self.0.abs())
            }
        }

        impl Add for $name {
            type Output = Self;
            fn add(self, rhs: Self) -> Self {
                Self(self.0 + rhs.0)
            }
        }

        impl AddAssign for $name {
            fn add_assign(&mut self, rhs: Self) {
                self.0 += rhs.0;
            }
        }

        impl Sub for $name {
            type Output = Self;
            fn sub(self, rhs: Self) -> Self {
                Self(self.0 - rhs.0)
            }
        }

        impl SubAssign for $name {
            fn sub_assign(&mut self, rhs: Self) {
                self.0 -= rhs.0;
            }
        }

        impl Neg for $name {
            type Output = Self;
            fn neg(self) -> Self {
                Self(-self.0)
            }
        }

        impl Mul<f64> for $name {
            type Output = Self;
            fn mul(self, rhs: f64) -> Self {
                Self(self.0 * rhs)
            }
        }

        impl Mul<$name> for f64 {
            type Output = $name;
            fn mul(self, rhs: $name) -> $name {
                $name(self * rhs.0)
            }
        }

        impl Div<f64> for $name {
            type Output = Self;
            fn div(self, rhs: f64) -> Self {
                Self(self.0 / rhs)
            }
        }

        impl Div<$name> for $name {
            /// Ratio of two like quantities is dimensionless.
            type Output = f64;
            fn div(self, rhs: $name) -> f64 {
                self.0 / rhs.0
            }
        }

        impl Sum for $name {
            fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
                Self(iter.map(|v| v.0).sum())
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                if let Some(precision) = f.precision() {
                    write!(f, "{:.*} {}", precision, self.0, $unit)
                } else {
                    write!(f, "{} {}", self.0, $unit)
                }
            }
        }
    };
}

unit_newtype!(
    /// A time duration or instant offset, in seconds.
    Seconds,
    "s",
    as_secs
);
unit_newtype!(
    /// Instantaneous power draw, in watts.
    Watts,
    "W",
    as_watts
);
unit_newtype!(
    /// Consumed energy, in joules.
    Joules,
    "J",
    as_joules
);
unit_newtype!(
    /// A frequency, in hertz.
    Hertz,
    "Hz",
    as_hertz
);
unit_newtype!(
    /// A data quantity, in bits.
    Bits,
    "b",
    as_bits
);
unit_newtype!(
    /// A data rate, in bits per second.
    BitsPerSecond,
    "b/s",
    as_bits_per_second
);

impl Seconds {
    /// Creates a duration from milliseconds.
    ///
    /// ```
    /// use seo_platform::units::Seconds;
    /// assert_eq!(Seconds::from_millis(17.0).as_secs(), 0.017);
    /// ```
    #[must_use]
    pub fn from_millis(ms: f64) -> Self {
        Self::new(ms / 1e3)
    }

    /// Returns the duration in milliseconds.
    #[must_use]
    pub fn as_millis(self) -> f64 {
        self.as_secs() * 1e3
    }

    /// The reciprocal frequency `1 / t`.
    ///
    /// Returns [`Hertz`] of `f64::INFINITY` when the duration is zero.
    #[must_use]
    pub fn to_frequency(self) -> Hertz {
        Hertz::new(1.0 / self.as_secs())
    }
}

impl Hertz {
    /// The reciprocal period `1 / f`.
    ///
    /// ```
    /// use seo_platform::units::{Hertz, Seconds};
    /// assert_eq!(Hertz::new(50.0).to_period(), Seconds::from_millis(20.0));
    /// ```
    #[must_use]
    pub fn to_period(self) -> Seconds {
        Seconds::new(1.0 / self.as_hertz())
    }
}

impl Bits {
    /// Creates a data quantity from bytes.
    #[must_use]
    pub fn from_bytes(bytes: f64) -> Self {
        Self::new(bytes * 8.0)
    }

    /// Creates a data quantity from kilobytes (1 kB = 1000 bytes).
    #[must_use]
    pub fn from_kilobytes(kb: f64) -> Self {
        Self::from_bytes(kb * 1e3)
    }

    /// Returns the quantity in bytes.
    #[must_use]
    pub fn as_bytes(self) -> f64 {
        self.as_bits() / 8.0
    }
}

impl BitsPerSecond {
    /// Creates a data rate from megabits per second.
    ///
    /// ```
    /// use seo_platform::units::BitsPerSecond;
    /// assert_eq!(BitsPerSecond::from_mbps(20.0).as_bits_per_second(), 2.0e7);
    /// ```
    #[must_use]
    pub fn from_mbps(mbps: f64) -> Self {
        Self::new(mbps * 1e6)
    }

    /// Returns the rate in megabits per second.
    #[must_use]
    pub fn as_mbps(self) -> f64 {
        self.as_bits_per_second() / 1e6
    }
}

impl Mul<Watts> for Seconds {
    type Output = Joules;
    /// Energy = time x power.
    fn mul(self, rhs: Watts) -> Joules {
        Joules::new(self.as_secs() * rhs.as_watts())
    }
}

impl Mul<Seconds> for Watts {
    type Output = Joules;
    /// Energy = power x time.
    fn mul(self, rhs: Seconds) -> Joules {
        Joules::new(self.as_watts() * rhs.as_secs())
    }
}

impl Div<Seconds> for Joules {
    type Output = Watts;
    /// Average power = energy / time.
    fn div(self, rhs: Seconds) -> Watts {
        Watts::new(self.as_joules() / rhs.as_secs())
    }
}

impl Div<Watts> for Joules {
    type Output = Seconds;
    /// Time = energy / power.
    fn div(self, rhs: Watts) -> Seconds {
        Seconds::new(self.as_joules() / rhs.as_watts())
    }
}

impl Div<BitsPerSecond> for Bits {
    type Output = Seconds;
    /// Transmission time = payload / rate.
    fn div(self, rhs: BitsPerSecond) -> Seconds {
        Seconds::new(self.as_bits() / rhs.as_bits_per_second())
    }
}

impl Mul<Seconds> for BitsPerSecond {
    type Output = Bits;
    /// Data volume = rate x time.
    fn mul(self, rhs: Seconds) -> Bits {
        Bits::new(self.as_bits_per_second() * rhs.as_secs())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seconds_millis_roundtrip() {
        let t = Seconds::from_millis(20.0);
        assert_eq!(t.as_secs(), 0.02);
        assert_eq!(t.as_millis(), 20.0);
    }

    #[test]
    fn energy_is_time_times_power() {
        let e = Seconds::from_millis(17.0) * Watts::new(7.0);
        assert!((e.as_joules() - 0.119).abs() < 1e-12);
        let e2 = Watts::new(7.0) * Seconds::from_millis(17.0);
        assert_eq!(e, e2);
    }

    #[test]
    fn energy_divides_back_to_power_and_time() {
        let e = Joules::new(0.119);
        let p = e / Seconds::from_millis(17.0);
        assert!((p.as_watts() - 7.0).abs() < 1e-9);
        let t = e / Watts::new(7.0);
        assert!((t.as_millis() - 17.0).abs() < 1e-9);
    }

    #[test]
    fn transmission_time_from_payload_and_rate() {
        let payload = Bits::from_kilobytes(25.0); // 200_000 bits
        let rate = BitsPerSecond::from_mbps(20.0); // 2e7 b/s
        let t = payload / rate;
        assert!((t.as_millis() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn rate_times_time_is_volume() {
        let v = BitsPerSecond::from_mbps(20.0) * Seconds::from_millis(10.0);
        assert!((v.as_bits() - 2.0e5).abs() < 1e-6);
    }

    #[test]
    fn frequency_period_roundtrip() {
        let f = Hertz::new(50.0);
        assert_eq!(f.to_period(), Seconds::from_millis(20.0));
        assert!((f.to_period().to_frequency().as_hertz() - 50.0).abs() < 1e-12);
    }

    #[test]
    fn arithmetic_ops() {
        let a = Joules::new(1.0);
        let b = Joules::new(0.5);
        assert_eq!(a + b, Joules::new(1.5));
        assert_eq!(a - b, Joules::new(0.5));
        assert_eq!(a * 2.0, Joules::new(2.0));
        assert_eq!(2.0 * a, Joules::new(2.0));
        assert_eq!(a / 2.0, Joules::new(0.5));
        assert_eq!(a / b, 2.0);
        assert_eq!(-a, Joules::new(-1.0));
        let mut c = a;
        c += b;
        assert_eq!(c, Joules::new(1.5));
        c -= b;
        assert_eq!(c, a);
    }

    #[test]
    fn sum_over_iterator() {
        let total: Joules = (0..4).map(|i| Joules::new(f64::from(i))).sum();
        assert_eq!(total, Joules::new(6.0));
    }

    #[test]
    fn validity_checks() {
        assert!(Seconds::new(1.0).is_valid());
        assert!(Seconds::ZERO.is_valid());
        assert!(!Seconds::new(-1.0).is_valid());
        assert!(!Seconds::new(f64::NAN).is_valid());
        assert!(!Seconds::new(f64::INFINITY).is_valid());
    }

    #[test]
    fn clamp_min_max_abs() {
        let w = Watts::new(5.0);
        assert_eq!(w.clamp(Watts::ZERO, Watts::new(2.0)), Watts::new(2.0));
        assert_eq!(w.max(Watts::new(7.0)), Watts::new(7.0));
        assert_eq!(w.min(Watts::new(2.0)), Watts::new(2.0));
        assert_eq!(Watts::new(-3.0).abs(), Watts::new(3.0));
    }

    #[test]
    fn display_formatting() {
        assert_eq!(format!("{:.3}", Seconds::from_millis(17.0)), "0.017 s");
        assert_eq!(format!("{}", Watts::new(7.0)), "7 W");
    }

    #[test]
    fn raw_value_roundtrip_is_transparent() {
        let t = Seconds::from_millis(20.0);
        assert_eq!(t.as_secs(), 0.02);
        let back = Seconds::new(t.as_secs());
        assert_eq!(back, t);
    }

    #[test]
    fn bytes_conversion() {
        assert_eq!(Bits::from_bytes(1.0).as_bits(), 8.0);
        assert_eq!(Bits::from_kilobytes(1.0).as_bytes(), 1000.0);
    }
}
