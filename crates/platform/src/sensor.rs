//! Industry sensor specifications.
//!
//! The paper's sensor-gating analysis (Section VI-D, Table III) splits sensor
//! power into a *measurement* component `P_meas` that can be gated and a
//! *mechanical* component `P_mech` (e.g. a LiDAR's rotating motor) that must
//! keep running because of inertia. The three industry sensors the paper
//! characterizes are provided as presets.

use crate::error::PlatformError;
use crate::units::{Joules, Seconds, Watts};
use std::fmt;

/// Power specification of one physical sensor.
///
/// # Example
///
/// ```
/// use seo_platform::sensor::SensorSpec;
///
/// let radar = SensorSpec::navtech_cts350x();
/// assert_eq!(radar.measurement_power().as_watts(), 21.6);
/// assert_eq!(radar.mechanical_power().as_watts(), 2.4);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SensorSpec {
    name: String,
    measurement_power: Watts,
    mechanical_power: Watts,
}

impl SensorSpec {
    /// Creates a sensor specification.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::InvalidQuantity`] if either power is negative
    /// or non-finite.
    pub fn new(
        name: impl Into<String>,
        measurement_power: Watts,
        mechanical_power: Watts,
    ) -> Result<Self, PlatformError> {
        if !measurement_power.is_valid() {
            return Err(PlatformError::InvalidQuantity {
                field: "measurement_power",
                value: measurement_power.as_watts(),
            });
        }
        if !mechanical_power.is_valid() {
            return Err(PlatformError::InvalidQuantity {
                field: "mechanical_power",
                value: mechanical_power.as_watts(),
            });
        }
        Ok(Self {
            name: name.into(),
            measurement_power,
            mechanical_power,
        })
    }

    /// An idealized sensor that draws no power (useful when experiments only
    /// account for compute energy, as in the paper's Figures 5–6).
    #[must_use]
    pub fn zero_power(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            measurement_power: Watts::ZERO,
            mechanical_power: Watts::ZERO,
        }
    }

    /// ZED stereo camera: 1.9 W measurement, no mechanical component
    /// (Table III).
    #[must_use]
    pub fn zed_camera() -> Self {
        Self {
            name: "zed-stereo-camera".to_owned(),
            measurement_power: Watts::new(1.9),
            mechanical_power: Watts::ZERO,
        }
    }

    /// Navtech CTS350-X radar: 21.6 W measurement, 2.4 W mechanical
    /// (Table III).
    #[must_use]
    pub fn navtech_cts350x() -> Self {
        Self {
            name: "navtech-cts350x-radar".to_owned(),
            measurement_power: Watts::new(21.6),
            mechanical_power: Watts::new(2.4),
        }
    }

    /// Velodyne HDL-32e LiDAR: 9.6 W measurement, 2.4 W rotation motor
    /// (Table III).
    #[must_use]
    pub fn velodyne_hdl32e() -> Self {
        Self {
            name: "velodyne-hdl32e-lidar".to_owned(),
            measurement_power: Watts::new(9.6),
            mechanical_power: Watts::new(2.4),
        }
    }

    /// Sensor name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Gateable measurement power `P_meas`.
    #[must_use]
    pub fn measurement_power(&self) -> Watts {
        self.measurement_power
    }

    /// Non-gateable mechanical power `P_mech` (rotating motors etc.).
    #[must_use]
    pub fn mechanical_power(&self) -> Watts {
        self.mechanical_power
    }

    /// Total active power while measuring.
    #[must_use]
    pub fn active_power(&self) -> Watts {
        self.measurement_power + self.mechanical_power
    }

    /// Sensor energy drawn over one base window `tau` while **gated**
    /// (paper eq. 8): only the mechanical component keeps running,
    /// `E_Ω = τ · P_mech`.
    #[must_use]
    pub fn gated_window_energy(&self, tau: Seconds) -> Joules {
        tau * self.mechanical_power
    }

    /// Sensor energy drawn over one base window `tau` while **measuring**
    /// (paper eq. 8, sensor part): `τ · (P_mech + P_meas)`.
    #[must_use]
    pub fn active_window_energy(&self, tau: Seconds) -> Joules {
        tau * self.active_power()
    }
}

impl fmt::Display for SensorSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} (P_meas={:.1} W, P_mech={:.1} W)",
            self.name,
            self.measurement_power.as_watts(),
            self.mechanical_power.as_watts()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_table_iii() {
        let cam = SensorSpec::zed_camera();
        assert_eq!(cam.measurement_power(), Watts::new(1.9));
        assert_eq!(cam.mechanical_power(), Watts::ZERO);

        let radar = SensorSpec::navtech_cts350x();
        assert_eq!(radar.measurement_power(), Watts::new(21.6));
        assert_eq!(radar.mechanical_power(), Watts::new(2.4));

        let lidar = SensorSpec::velodyne_hdl32e();
        assert_eq!(lidar.measurement_power(), Watts::new(9.6));
        assert_eq!(lidar.mechanical_power(), Watts::new(2.4));
    }

    #[test]
    fn window_energies_follow_eq8() {
        let tau = Seconds::from_millis(20.0);
        let lidar = SensorSpec::velodyne_hdl32e();
        // Gated: only the rotation motor draws power.
        assert!((lidar.gated_window_energy(tau).as_joules() - 0.02 * 2.4).abs() < 1e-12);
        // Active: motor + measurement.
        assert!((lidar.active_window_energy(tau).as_joules() - 0.02 * 12.0).abs() < 1e-12);
    }

    #[test]
    fn camera_gated_energy_is_zero() {
        let cam = SensorSpec::zed_camera();
        assert_eq!(
            cam.gated_window_energy(Seconds::from_millis(20.0)),
            Joules::ZERO
        );
    }

    #[test]
    fn zero_power_sensor() {
        let s = SensorSpec::zero_power("ideal");
        assert_eq!(s.active_power(), Watts::ZERO);
        assert_eq!(s.active_window_energy(Seconds::new(1.0)), Joules::ZERO);
    }

    #[test]
    fn rejects_invalid_powers() {
        assert!(SensorSpec::new("s", Watts::new(-1.0), Watts::ZERO).is_err());
        assert!(SensorSpec::new("s", Watts::ZERO, Watts::new(f64::INFINITY)).is_err());
    }

    #[test]
    fn display_mentions_both_powers() {
        let s = SensorSpec::navtech_cts350x().to_string();
        assert!(s.contains("21.6"));
        assert!(s.contains("2.4"));
    }

    #[test]
    fn clone_roundtrip() {
        let s = SensorSpec::velodyne_hdl32e();
        let back = s.clone();
        assert_eq!(back, s);
    }
}
