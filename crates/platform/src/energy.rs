//! Energy accounting.
//!
//! SEO experiments compare an optimized schedule against an always-local
//! baseline. The [`EnergyLedger`] attributes every joule to an
//! [`EnergyCategory`] so experiment reports can answer both "how much energy
//! did we save" and "where did the remaining energy go".

use crate::error::PlatformError;
use crate::units::Joules;
use std::fmt;

/// Where a quantum of energy was spent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum EnergyCategory {
    /// Local neural-network inference (full or gated).
    Compute,
    /// Wireless transmission for task offloading.
    Transmission,
    /// Sensor measurement circuitry (`P_meas`).
    SensorMeasurement,
    /// Sensor mechanical components (`P_mech`), never gateable.
    SensorMechanical,
}

impl EnergyCategory {
    /// All categories, in reporting order.
    pub const ALL: [Self; 4] = [
        Self::Compute,
        Self::Transmission,
        Self::SensorMeasurement,
        Self::SensorMechanical,
    ];
}

impl fmt::Display for EnergyCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Self::Compute => "compute",
            Self::Transmission => "transmission",
            Self::SensorMeasurement => "sensor-measurement",
            Self::SensorMechanical => "sensor-mechanical",
        };
        f.write_str(s)
    }
}

/// Accumulates energy consumption by category.
///
/// # Example
///
/// ```
/// use seo_platform::energy::{EnergyCategory, EnergyLedger};
/// use seo_platform::units::Joules;
///
/// let mut ledger = EnergyLedger::new();
/// ledger.record(EnergyCategory::Compute, Joules::new(0.119));
/// ledger.record(EnergyCategory::Transmission, Joules::new(0.013));
/// assert!((ledger.total().as_joules() - 0.132).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EnergyLedger {
    compute: Joules,
    transmission: Joules,
    sensor_measurement: Joules,
    sensor_mechanical: Joules,
}

impl EnergyLedger {
    /// Creates an empty ledger.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `amount` to `category`.
    ///
    /// Negative or non-finite amounts are ignored with a debug assertion —
    /// consumed energy is monotone.
    pub fn record(&mut self, category: EnergyCategory, amount: Joules) {
        debug_assert!(amount.is_valid(), "recorded energy {amount} must be valid");
        if !amount.is_valid() {
            return;
        }
        *self.slot_mut(category) += amount;
    }

    /// Energy recorded under `category`.
    #[must_use]
    pub fn by_category(&self, category: EnergyCategory) -> Joules {
        match category {
            EnergyCategory::Compute => self.compute,
            EnergyCategory::Transmission => self.transmission,
            EnergyCategory::SensorMeasurement => self.sensor_measurement,
            EnergyCategory::SensorMechanical => self.sensor_mechanical,
        }
    }

    fn slot_mut(&mut self, category: EnergyCategory) -> &mut Joules {
        match category {
            EnergyCategory::Compute => &mut self.compute,
            EnergyCategory::Transmission => &mut self.transmission,
            EnergyCategory::SensorMeasurement => &mut self.sensor_measurement,
            EnergyCategory::SensorMechanical => &mut self.sensor_mechanical,
        }
    }

    /// Total energy across all categories.
    #[must_use]
    pub fn total(&self) -> Joules {
        self.compute + self.transmission + self.sensor_measurement + self.sensor_mechanical
    }

    /// Merges another ledger into this one.
    pub fn merge(&mut self, other: &Self) {
        self.compute += other.compute;
        self.transmission += other.transmission;
        self.sensor_measurement += other.sensor_measurement;
        self.sensor_mechanical += other.sensor_mechanical;
    }

    /// Fractional energy **gain** of this (optimized) ledger over a
    /// `baseline` ledger: `1 - total / baseline_total`.
    ///
    /// A positive gain means this schedule consumed less energy than the
    /// baseline; the paper reports these as percentages (e.g. 89.9 %).
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::ZeroBaseline`] if the baseline total is zero.
    pub fn gain_over(&self, baseline: &Self) -> Result<f64, PlatformError> {
        let base = baseline.total().as_joules();
        if base == 0.0 {
            return Err(PlatformError::ZeroBaseline);
        }
        Ok(1.0 - self.total().as_joules() / base)
    }

    /// Normalized energy of this ledger relative to a baseline
    /// (`total / baseline_total`, the vertical axis of the paper's Fig. 1).
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::ZeroBaseline`] if the baseline total is zero.
    pub fn normalized_against(&self, baseline: &Self) -> Result<f64, PlatformError> {
        Ok(1.0 - self.gain_over(baseline)?)
    }
}

impl fmt::Display for EnergyLedger {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "total {:.4} J (compute {:.4}, tx {:.4}, meas {:.4}, mech {:.4})",
            self.total().as_joules(),
            self.compute.as_joules(),
            self.transmission.as_joules(),
            self.sensor_measurement.as_joules(),
            self.sensor_mechanical.as_joules()
        )
    }
}

impl std::iter::Sum for EnergyLedger {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        let mut acc = Self::new();
        for ledger in iter {
            acc.merge(&ledger);
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ledger(compute: f64, tx: f64) -> EnergyLedger {
        let mut l = EnergyLedger::new();
        l.record(EnergyCategory::Compute, Joules::new(compute));
        l.record(EnergyCategory::Transmission, Joules::new(tx));
        l
    }

    #[test]
    fn records_and_totals() {
        let mut l = EnergyLedger::new();
        for (i, cat) in EnergyCategory::ALL.iter().enumerate() {
            l.record(*cat, Joules::new(i as f64 + 1.0));
        }
        assert_eq!(l.total(), Joules::new(10.0));
        assert_eq!(
            l.by_category(EnergyCategory::SensorMechanical),
            Joules::new(4.0)
        );
    }

    #[test]
    fn gain_over_baseline() {
        let optimized = ledger(0.119, 0.039);
        let baseline = ledger(0.476, 0.0);
        let gain = optimized.gain_over(&baseline).expect("nonzero baseline");
        assert!((gain - (1.0 - 0.158 / 0.476)).abs() < 1e-12);
    }

    #[test]
    fn normalized_is_one_minus_gain() {
        let optimized = ledger(0.5, 0.0);
        let baseline = ledger(1.0, 0.0);
        assert!((optimized.normalized_against(&baseline).expect("ok") - 0.5).abs() < 1e-12);
    }

    #[test]
    fn zero_baseline_is_error() {
        let l = ledger(1.0, 0.0);
        assert_eq!(
            l.gain_over(&EnergyLedger::new()).unwrap_err(),
            PlatformError::ZeroBaseline
        );
    }

    #[test]
    fn merge_and_sum() {
        let a = ledger(1.0, 2.0);
        let b = ledger(3.0, 4.0);
        let mut m = a;
        m.merge(&b);
        assert_eq!(m.total(), Joules::new(10.0));
        let s: EnergyLedger = [a, b].into_iter().sum();
        assert_eq!(s, m);
    }

    #[test]
    fn identical_ledgers_have_zero_gain() {
        let l = ledger(2.0, 1.0);
        assert!((l.gain_over(&l).expect("ok")).abs() < 1e-12);
    }

    #[test]
    fn negative_record_is_ignored_in_release() {
        // debug_assert fires in tests, so use a catch to verify behaviour in
        // the release path is "ignore".
        let result = std::panic::catch_unwind(|| {
            let mut l = EnergyLedger::new();
            l.record(EnergyCategory::Compute, Joules::new(-1.0));
            l
        });
        if let Ok(l) = result {
            assert_eq!(l.total(), Joules::ZERO);
        }
    }

    #[test]
    fn display_lists_all_categories() {
        let text = ledger(1.0, 2.0).to_string();
        assert!(text.contains("compute"));
        assert!(text.contains("tx"));
    }

    #[test]
    fn category_display() {
        assert_eq!(EnergyCategory::Compute.to_string(), "compute");
        assert_eq!(
            EnergyCategory::SensorMechanical.to_string(),
            "sensor-mechanical"
        );
    }
}
