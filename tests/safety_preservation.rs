//! The paper's central claim: energy optimizations are applied **while the
//! desired safety properties are preserved**. These tests check the claim
//! end to end: with the shield active, no barrier violation and no
//! collision occurs under any optimizer, and the optimization schedule
//! always re-invokes the full model by the safety deadline.

use seo_core::model::ModelId;
use seo_core::prelude::*;
use seo_core::runtime::RuntimeLoop;
use seo_core::scheduler::SafeScheduler;
use seo_sim::episode::EpisodeStatus;
use seo_sim::scenario::ScenarioConfig;

#[test]
fn filtered_runs_never_violate_the_barrier() {
    let config = SeoConfig::paper_defaults();
    let models = ModelSet::paper_setup(config.tau).expect("valid");
    for optimizer in OptimizerKind::ALL {
        let rt = RuntimeLoop::new(config, models.clone(), optimizer).expect("valid runtime");
        for seed in 0..4u64 {
            let world = ScenarioConfig::new(4).with_seed(seed).generate();
            let report = rt.run_episode(&world, seed);
            assert_ne!(
                report.status,
                EpisodeStatus::Collided,
                "{optimizer} seed {seed}: collision under the shield"
            );
            assert_eq!(
                report.unsafe_steps, 0,
                "{optimizer} seed {seed}: S=0 observed (min h = {})",
                report.min_barrier
            );
            assert!(
                report.min_distance > 0.5,
                "{optimizer} seed {seed}: came within collision margin"
            );
        }
    }
}

#[test]
fn deadline_slot_always_reinvokes_full_model() {
    // Pure scheduler property over many random-ish deadline sequences: in
    // every interval with delta_i < delta_max, a FullDeadline slot occurs
    // exactly delta_i slots before the deadline expires.
    let deadlines = [4u32, 2, 3, 1, 0, 4, 4, 2, 3, 2, 1, 4, 3];
    let mut scheduler = SafeScheduler::new(vec![(ModelId(0), 1), (ModelId(1), 2)]);
    let mut queue = deadlines.iter().copied().cycle();
    let mut interval_delta = 0u32;
    let mut full_deadline_slots: Vec<(u32, u32)> = Vec::new(); // (n, delta_max)
    for _ in 0..200 {
        let plan = scheduler.plan_step(|| queue.next().expect("cycled"));
        if plan.interval_started {
            interval_delta = plan.delta_max;
        }
        for (id, kind) in &plan.slots {
            if *kind == SlotKind::FullDeadline {
                let delta_i = scheduler.delta_i(*id).expect("registered");
                assert_eq!(
                    plan.n,
                    interval_delta - delta_i,
                    "FullDeadline at wrong slot for {id}"
                );
                full_deadline_slots.push((plan.n, interval_delta));
            }
        }
    }
    assert!(!full_deadline_slots.is_empty(), "deadline slots must occur");
}

#[test]
fn zero_deadline_forces_full_capacity_everywhere() {
    // When the sampled deadline is 0 (already at the safety boundary), no
    // optimization slot may be scheduled at all.
    let mut scheduler = SafeScheduler::new(vec![(ModelId(0), 1), (ModelId(1), 2)]);
    for _ in 0..20 {
        let plan = scheduler.plan_step(|| 0);
        for (_, kind) in &plan.slots {
            assert_ne!(
                *kind,
                SlotKind::Optimized,
                "optimized slot under zero deadline"
            );
        }
    }
}

#[test]
fn unfiltered_runs_report_violations_when_they_happen() {
    // The monitor must not silently hide unsafe steps: drive a reckless
    // open-loop control into an obstacle world without the shield and check
    // that violations are counted.
    use seo_safety::barrier::DistanceBarrier;
    use seo_safety::monitor::SafetyMonitor;
    use seo_sim::episode::{Episode, EpisodeConfig};
    use seo_sim::sensing::RelativeObservation;
    use seo_sim::vehicle::Control;

    let world = ScenarioConfig::new(4).with_seed(0).generate();
    let mut episode = Episode::new(world, EpisodeConfig::default());
    let mut monitor = SafetyMonitor::new(DistanceBarrier::default());
    while episode.status() == EpisodeStatus::Running {
        let obs = RelativeObservation::observe(episode.world(), &episode.state());
        monitor.record(&obs, false);
        episode.step(Control::new(0.0, 1.0));
    }
    assert_eq!(episode.status(), EpisodeStatus::Collided);
    assert!(
        monitor.unsafe_steps() > 0,
        "violations must be visible to the monitor"
    );
    assert!(monitor.min_barrier() < 0.0);
}

#[test]
fn safety_evidence_is_reported_per_experiment() {
    let result = ExperimentConfig::paper_defaults()
        .with_optimizer(OptimizerKind::Offloading)
        .with_obstacles(4)
        .with_runs(3)
        .run()
        .expect("harness runs");
    assert!(
        result.all_runs_safe(),
        "filtered experiment must preserve S = 1"
    );
    for report in &result.reports {
        assert!(report.min_distance.is_finite());
        assert!(report.min_barrier >= 0.0);
    }
}
