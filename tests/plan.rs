//! Workspace-level properties of the unified `SweepPlan` API: the paper
//! preset's equivalence with the legacy grid, save → load → expand
//! identity, the validation rejection table (one case per invalid field,
//! each naming the field), and the multi-axis grid's agreement with the
//! experiment harness's single-cell semantics.

use seo_core::batch::{BatchRunner, ScenarioSpec};
use seo_core::plan::PLAN_VERSION;
use seo_core::prelude::*;
use seo_core::runtime::RuntimeLoop;
use seo_core::shard::report_line;

fn paper_runtime() -> RuntimeLoop {
    let config = SeoConfig::paper_defaults();
    let models = ModelSet::paper_setup(config.tau).expect("paper models");
    RuntimeLoop::new(config, models, OptimizerKind::Offloading).expect("valid runtime")
}

/// The acceptance invariant: the paper preset expands to exactly the specs
/// of `ScenarioSpec::paper_grid` and its serial run is bit-identical —
/// field-wise and on the wire — to `BatchRunner::run_serial` over that
/// grid.
#[test]
fn paper_preset_is_bit_identical_to_the_legacy_grid() {
    let plan = SweepPlan::paper(6, 2023);
    let legacy = ScenarioSpec::paper_grid(6, 2023);
    let specs: Vec<ScenarioSpec> = plan.expand().iter().map(|p| p.spec).collect();
    assert_eq!(specs, legacy);

    let reference = BatchRunner::new(paper_runtime()).run_serial(&legacy);
    let serial = plan.run_serial().expect("plan runs");
    assert_eq!(serial, reference);
    for (i, (p, r)) in serial.iter().zip(&reference).enumerate() {
        assert_eq!(report_line(i, p), report_line(i, r), "wire line {i}");
    }
    // Threads mode is held to the same output.
    assert_eq!(plan.run_threads(3).expect("threads run"), reference);
}

/// Save → load → expand is index- and bit-identical: the reloaded plan is
/// equal, every grid point matches by index, and the reloaded plan's serial
/// run reproduces the original's bytes on the wire.
#[test]
fn save_load_expand_round_trip_is_identical() {
    let plan = SweepPlan::paper(3, 7)
        .with_tau_ms(vec![20.0, 25.0])
        .with_optimizers(vec![OptimizerKind::Offloading, OptimizerKind::ModelGating])
        .with_kernel(KernelBackend::Blocked)
        .with_verify(true);
    let saved = plan.to_json().render_pretty();
    let reloaded = SweepPlan::parse(&saved).expect("parses");
    assert_eq!(reloaded, plan);

    let original = plan.expand();
    let back = reloaded.expand();
    assert_eq!(back.len(), original.len());
    for (a, b) in original.iter().zip(&back) {
        assert_eq!(a.index, b.index);
        assert_eq!(a.spec, b.spec);
        assert_eq!(a.cell, b.cell);
    }

    let a = plan.run_serial().expect("original runs");
    let b = reloaded.run_serial().expect("reloaded runs");
    assert_eq!(a, b);
    for (i, (x, y)) in a.iter().zip(&b).enumerate() {
        assert_eq!(report_line(i, x), report_line(i, y), "wire line {i}");
    }
}

/// The rejection table: one case per invalid field. Every case must fail
/// validation with the offending field named in the error text.
#[test]
fn validation_rejection_table_names_every_field() {
    let base = || SweepPlan::paper(6, 2023);
    let cases: Vec<(&str, SweepPlan)> = vec![
        ("axes.obstacles", base().with_obstacles(vec![])),
        ("axes.obstacles", base().with_obstacles(vec![2, 2])),
        ("axes.tau_ms", base().with_tau_ms(vec![])),
        ("axes.tau_ms", base().with_tau_ms(vec![0.0])),
        ("axes.tau_ms", base().with_tau_ms(vec![f64::NAN])),
        ("axes.gating_levels", base().with_gating_levels(vec![])),
        ("axes.gating_levels", base().with_gating_levels(vec![-0.1])),
        ("axes.gating_levels", base().with_gating_levels(vec![1.1])),
        ("axes.control_modes", base().with_control_modes(vec![])),
        (
            "axes.control_modes",
            base().with_control_modes(vec![ControlMode::Filtered, ControlMode::Filtered]),
        ),
        ("axes.optimizers", base().with_optimizers(vec![])),
        ("axes.controllers", base().with_controllers(vec![])),
        ("axes.seeds.runs", base().with_seeds(2023, 0)),
        ("exec.workers", base().with_mode(ExecMode::Threads(0))),
        ("exec.workers", base().with_mode(ExecMode::Processes(7))),
        ("exec.timeout_secs", base().with_timeout_secs(-1.0)),
        ("exec.timeout_secs", base().with_timeout_secs(f64::INFINITY)),
        // Parses as a finite positive f64 but exceeds what Duration can
        // represent — must be a validation error, not a panic at use.
        ("exec.timeout_secs", base().with_timeout_secs(1e30)),
    ];
    for (field, plan) in cases {
        let err = plan.validate().expect_err(field);
        assert!(
            err.to_string().contains(field),
            "expected '{field}' in: {err}"
        );
    }
    // Duplicate hosts are rejected at pool construction and again by the
    // plan's own validation (covering hand-built pools): exercise the JSON
    // path, where the field must be named.
    let err = SweepPlan::parse(
        r#"{"v":1,"exec":{"mode":{"hosts":{"v":1,"hosts":[
            {"addr":"a:1","capacity":1},{"addr":"a:1","capacity":1}]}}}}"#,
    )
    .expect_err("duplicate hosts");
    assert!(
        err.to_string().contains("exec.mode.hosts"),
        "field not named: {err}"
    );
    // Unknown kernels are caught at parse time with the valid names listed.
    let err = SweepPlan::parse(r#"{"v":1,"exec":{"kernel":"warp9"}}"#).expect_err("bad kernel");
    let text = err.to_string();
    assert!(text.contains("exec.kernel"), "{text}");
    assert!(text.contains("scalar, blocked"), "{text}");
}

/// Sweeping a runtime axis must agree with configuring the experiment
/// harness by hand: the plan's gating-level cells reproduce episodes run
/// through `SeoConfig::with_gating_level` directly.
#[test]
fn multi_axis_cells_match_hand_built_runtimes() {
    let plan = SweepPlan::paper(3, 11)
        .with_obstacles(vec![2])
        .with_seeds(11, 2)
        .with_gating_levels(vec![0.25, 0.75])
        .with_optimizers(vec![OptimizerKind::ModelGating]);
    let reports = plan.run_serial().expect("plan runs");
    assert_eq!(reports.len(), 4, "2 gating levels x 1 obstacle x 2 seeds");

    let mut expected = Vec::new();
    for level in [0.25, 0.75] {
        let config = SeoConfig::paper_defaults().with_gating_level(level);
        let models = ModelSet::paper_setup(config.tau).expect("models");
        let runtime =
            RuntimeLoop::new(config, models, OptimizerKind::ModelGating).expect("runtime");
        for seed in [11u64, 12] {
            expected.push(runtime.run_episode(&ScenarioSpec::new(2, seed).world(), seed));
        }
    }
    assert_eq!(reports, expected);
}

/// Every committed example plan must stay valid against the current schema,
/// and the paper example must *be* the paper preset (60 scenarios).
#[test]
fn committed_example_plans_validate() {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../../examples/plans");
    let mut seen = 0usize;
    for entry in std::fs::read_dir(dir).expect("examples/plans exists") {
        let path = entry.expect("dir entry").path();
        if path.extension().and_then(|e| e.to_str()) != Some("json") {
            continue;
        }
        let text = std::fs::read_to_string(&path).expect("readable");
        let plan = SweepPlan::parse(&text).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        assert!(plan.n_specs() > 0, "{}: empty grid", path.display());
        seen += 1;
        if path.file_name().and_then(|n| n.to_str()) == Some("paper.json") {
            assert_eq!(plan, SweepPlan::paper(60, 2023), "paper.json drifted");
        }
    }
    assert!(
        seen >= 3,
        "expected the committed preset plans, found {seen}"
    );
}

#[test]
fn plan_version_is_stamped() {
    assert_eq!(PLAN_VERSION, 1);
    let rendered = SweepPlan::paper(6, 2023).to_json().render();
    assert!(rendered.starts_with(r#"{"v":1,"#), "{rendered}");
}
