//! Integration tests for the beyond-the-paper extensions: dynamic worlds,
//! range impact, bursty channels, fallback semantics, and the parallel
//! experiment runner — exercised together, across crates.

use seo_core::prelude::*;
use seo_core::runtime::RuntimeLoop;
use seo_platform::range::RangeModel;
use seo_platform::units::Seconds;
use seo_sim::dynamics::{DynamicWorld, MovingObstacle};
use seo_sim::episode::EpisodeStatus;
use seo_sim::scenario::ScenarioConfig;
use seo_sim::world::{Obstacle, Road};

fn runtime(optimizer: OptimizerKind) -> RuntimeLoop {
    let config = SeoConfig::paper_defaults();
    let models = ModelSet::paper_setup(config.tau).expect("valid");
    RuntimeLoop::new(config, models, optimizer).expect("runtime builds")
}

#[test]
fn seo_gains_translate_into_recovered_driving_range() {
    // Close the loop on the paper's introduction: measured energy gains ->
    // average platform power reduction -> recovered EV range.
    let rt = runtime(OptimizerKind::Offloading);
    let report = rt.run_episode(&ScenarioConfig::new(0).with_seed(1).generate(), 1);
    assert_eq!(report.status, EpisodeStatus::Completed);
    let duration = Seconds::new(report.steps as f64 * rt.config().tau.as_secs());
    let baseline: seo_platform::energy::EnergyLedger =
        report.models.iter().map(|m| m.baseline).sum();
    let optimized: seo_platform::energy::EnergyLedger =
        report.models.iter().map(|m| m.optimized).sum();
    let ev = RangeModel::compact_ev().expect("valid");
    let recovered = ev
        .recovered_range_fraction(baseline.total(), optimized.total(), duration)
        .expect("positive duration");
    assert!(recovered > 0.0, "saving energy must recover range");
    assert!(
        recovered < 0.01,
        "a 2-detector platform is a small range factor"
    );
}

#[test]
fn dynamic_world_with_faster_oncoming_traffic_is_riskier() {
    let rt = runtime(OptimizerKind::ModelGating);
    let world_at = |vx: f64| {
        DynamicWorld::new(
            Road::default(),
            vec![MovingObstacle::new(Obstacle::new(150.0, 0.5, 1.0), vx, 0.0)],
        )
    };
    let slow = rt.run_dynamic_episode(&world_at(-3.0), 2);
    let fast = rt.run_dynamic_episode(&world_at(-9.0), 2);
    assert_ne!(slow.status, EpisodeStatus::Collided);
    assert_ne!(fast.status, EpisodeStatus::Collided);
    assert!(
        fast.histogram.mean() <= slow.histogram.mean() + 1e-9,
        "faster oncoming traffic must not raise deadlines: {} vs {}",
        fast.histogram.mean(),
        slow.histogram.mean()
    );
}

#[test]
fn parallel_experiment_is_protocol_identical() {
    let config = ExperimentConfig::paper_defaults()
        .with_optimizer(OptimizerKind::ModelGating)
        .with_obstacles(2)
        .with_runs(4);
    let sequential = config.run().expect("sequential");
    for threads in [1usize, 2, 8] {
        let parallel = config.run_parallel(threads).expect("parallel");
        assert_eq!(
            sequential.summary, parallel.summary,
            "summary must be identical at {threads} threads"
        );
    }
}

#[test]
fn fallback_semantics_bracket_the_paper_numbers() {
    // LocalOnTimeout reaches the headline region; AlwaysLocal lands near
    // eq. (7)'s analytic ceiling of 1 - (3 E_tx + E_N) / (4 E_N) for the
    // p=tau detector at delta_max = 4.
    let world = ScenarioConfig::new(0).with_seed(3).generate();
    let gain_under = |fallback| {
        let config = SeoConfig::paper_defaults().with_offload_fallback(fallback);
        let models = ModelSet::paper_setup(config.tau).expect("valid");
        RuntimeLoop::new(config, models, OptimizerKind::Offloading)
            .expect("builds")
            .run_episode(&world, 3)
            .models[0]
            .gain()
            .expect("nonzero baseline")
    };
    let generous = gain_under(OffloadFallback::LocalOnTimeout);
    let strict = gain_under(OffloadFallback::AlwaysLocal);
    assert!(
        generous > 0.8,
        "Fig. 3 semantics should reach the headline region: {generous}"
    );
    assert!(
        (0.4..0.75).contains(&strict),
        "strict eq. (7) should land near its ~63 % analytic ceiling: {strict}"
    );
}

#[test]
fn bursty_channel_reduces_offload_success_rate() {
    use seo_platform::units::{Bits, BitsPerSecond, Watts};
    use seo_wireless::channel::RayleighChannel;
    use seo_wireless::link::WirelessLink;

    let world = ScenarioConfig::new(0).with_seed(5).generate();
    let run_with_scale = |mbps: f64| {
        let link = WirelessLink::new(
            RayleighChannel::new(BitsPerSecond::from_mbps(mbps)).expect("valid"),
            Bits::from_kilobytes(25.0),
            Watts::new(1.3),
            Seconds::from_millis(1.0),
        )
        .expect("valid");
        let rt = runtime(OptimizerKind::Offloading).with_link(link);
        rt.run_episode(&world, 5)
    };
    // A Gilbert-Elliott bad state is equivalent to dwelling on a 2 Mbps
    // Rayleigh scale; compare the two stationary extremes.
    let good = run_with_scale(20.0);
    let degraded = run_with_scale(2.0);
    let rate = |r: &EpisodeReport| {
        let m = &r.models[0];
        m.offload_successes as f64 / m.offloads_issued.max(1) as f64
    };
    assert!(
        rate(&degraded) < rate(&good) + 1e-9,
        "a degraded channel must not improve success rates"
    );
    let g_good = good.combined_gain().expect("ok");
    let g_bad = degraded.combined_gain().expect("ok");
    assert!(
        g_bad < g_good,
        "degraded channel must reduce gains: {g_bad} vs {g_good}"
    );
}

#[test]
fn neural_controller_runs_inside_the_loop() {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use seo_core::controller::Controller;
    use seo_nn::policy::DrivingPolicy;

    // An untrained policy will not complete routes, but the loop must run
    // it safely to termination under the shield.
    let mut rng = StdRng::seed_from_u64(8);
    let policy = DrivingPolicy::new(&mut rng).expect("fixed topology");
    let config = SeoConfig::paper_defaults();
    let models = ModelSet::paper_setup(config.tau).expect("valid");
    let rt = RuntimeLoop::new(config, models, OptimizerKind::Offloading)
        .expect("builds")
        .with_controller(Controller::Neural(policy));
    let report = rt.run_episode(&ScenarioConfig::new(2).with_seed(9).generate(), 9);
    assert_ne!(
        report.status,
        EpisodeStatus::Collided,
        "shield must protect the novice"
    );
    assert!(report.steps > 0);
}
