//! Reproduction-shape tests: the qualitative claims of every paper figure
//! and table, checked with reduced run counts so CI stays fast. The full
//! 25-run numbers come from `cargo run -p seo-bench --bin all_experiments`.

use seo_core::prelude::*;

const RUNS: usize = 3;

fn run_cell(optimizer: OptimizerKind, mode: ControlMode, obstacles: usize) -> ExperimentResult {
    ExperimentConfig::paper_defaults()
        .with_optimizer(optimizer)
        .with_control_mode(mode)
        .with_obstacles(obstacles)
        .with_runs(RUNS)
        .run()
        .expect("cell runs")
}

#[test]
fn fig1_shape_energy_rises_with_risk() {
    let free = run_cell(OptimizerKind::ModelGating, ControlMode::Unfiltered, 0);
    let risky = run_cell(OptimizerKind::ModelGating, ControlMode::Unfiltered, 4);
    // Normalized energy = 1 - gain: rises toward full operation with risk.
    assert!(
        1.0 - risky.summary.combined_gain > 1.0 - free.summary.combined_gain,
        "normalized energy should rise with risk"
    );
}

#[test]
fn fig5_shape_faster_detector_gains_more() {
    // Under gating the ordering is structural (the slower detector has no
    // optimization room whenever delta_max <= 2), so it must hold strictly.
    let gating = run_cell(OptimizerKind::ModelGating, ControlMode::Filtered, 4);
    let g1 = gating.gain_for_model(0).expect("p=tau");
    let g2 = gating.gain_for_model(1).expect("p=2tau");
    assert!(
        g1 > g2,
        "gating: p=tau ({g1:.3}) should beat p=2tau ({g2:.3})"
    );

    // Under offloading the ordering holds on average but sits within noise
    // at CI-sized run counts: allow a small tolerance.
    let offload = run_cell(OptimizerKind::Offloading, ControlMode::Filtered, 4);
    let g1 = offload.gain_for_model(0).expect("p=tau");
    let g2 = offload.gain_for_model(1).expect("p=2tau");
    assert!(
        g1 > g2 - 0.05,
        "offloading: p=tau ({g1:.3}) should not trail p=2tau ({g2:.3}) by much"
    );
}

#[test]
fn fig5_shape_offloading_beats_gating() {
    let offload = run_cell(OptimizerKind::Offloading, ControlMode::Filtered, 2);
    let gating = run_cell(OptimizerKind::ModelGating, ControlMode::Filtered, 2);
    assert!(
        offload.summary.combined_gain > gating.summary.combined_gain,
        "offloading ({:.3}) should beat 50% gating ({:.3})",
        offload.summary.combined_gain,
        gating.summary.combined_gain
    );
}

#[test]
fn table1_shape_gains_positive_at_tau_25ms() {
    use seo_platform::units::Seconds;
    let result = ExperimentConfig::paper_defaults()
        .with_optimizer(OptimizerKind::Offloading)
        .with_tau(Seconds::from_millis(25.0))
        .with_runs(RUNS)
        .run()
        .expect("tau sweep runs");
    assert!(
        result.summary.combined_gain > 0.0,
        "considerable gains should remain at tau = 25 ms"
    );
    // eq. (4) at tau = 25 ms: the 20 ms sensor still occupies one slot.
    assert_eq!(result.reports[0].models[0].delta_i, 1);
    assert_eq!(result.reports[0].models[1].delta_i, 2);
}

#[test]
fn fig6_shape_low_deadlines_dominate_under_risk() {
    let free = run_cell(OptimizerKind::Offloading, ControlMode::Unfiltered, 0);
    let risky = run_cell(OptimizerKind::Offloading, ControlMode::Unfiltered, 4);
    let cap = 4u32;
    assert!(
        risky.summary.histogram.frequency(cap) < free.summary.histogram.frequency(cap),
        "delta_max = 4 should become rarer with obstacles"
    );
    assert!(risky.mean_delta_max() < free.mean_delta_max());
}

#[test]
fn table2_shape_gains_fall_with_obstacles_and_headline_holds() {
    let g0 = run_cell(OptimizerKind::Offloading, ControlMode::Filtered, 0);
    let g4 = run_cell(OptimizerKind::Offloading, ControlMode::Filtered, 4);
    assert!(g0.summary.combined_gain > g4.summary.combined_gain);
    // The paper's headline: gains up to 89.9 % under formal guarantees. Our
    // substrate should land in the same region on the free road.
    assert!(
        g0.summary.combined_gain > 0.75,
        "headline-region gain expected, got {:.3}",
        g0.summary.combined_gain
    );
    assert!(g0.all_runs_safe());
}

#[test]
fn table2_shape_filtered_gains_at_least_unfiltered() {
    let filt = run_cell(OptimizerKind::Offloading, ControlMode::Filtered, 2);
    let unf = run_cell(OptimizerKind::Offloading, ControlMode::Unfiltered, 2);
    assert!(
        filt.mean_delta_max() >= unf.mean_delta_max() - 0.2,
        "the shield should not reduce sampled deadlines: {} vs {}",
        filt.mean_delta_max(),
        unf.mean_delta_max()
    );
}

#[test]
fn table3_shape_camera_beats_radar_beats_lidar() {
    use seo_core::config::{EnergyAccounting, SeoConfig};
    use seo_platform::sensor::SensorSpec;

    // The closed-form 4-tau column (validated against the paper to <1 %):
    // gains order camera > radar > lidar because mechanical power is dead
    // weight under gating.
    let config = SeoConfig::paper_defaults().with_accounting(EnergyAccounting::WithSensor);
    let gain = |sensor: &SensorSpec| {
        let model = seo_core::model::PipelineModel::paper_detector(1, config.tau)
            .expect("valid")
            .with_sensor(sensor.clone());
        let full = seo_core::optimizer::full_slot_cost(&model, &config).total();
        let gated =
            seo_core::optimizer::optimized_slot_cost(OptimizerKind::SensorGating, &model, &config)
                .total();
        1.0 - (3.0 * gated.as_joules() + full.as_joules()) / (4.0 * full.as_joules())
    };
    let camera = gain(&SensorSpec::zed_camera());
    let radar = gain(&SensorSpec::navtech_cts350x());
    let lidar = gain(&SensorSpec::velodyne_hdl32e());
    assert!(
        camera > radar,
        "camera {camera:.4} should beat radar {radar:.4}"
    );
    assert!(
        radar > lidar,
        "radar {radar:.4} should beat lidar {lidar:.4}"
    );
}
