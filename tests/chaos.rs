//! Chaos-layer integration tests: the long-lived `seo-sweepd` daemon
//! ([`seo_core::daemon::DaemonServer`]) under deterministic fault
//! injection ([`seo_core::fault::FaultPlan`]), driven by the retrying,
//! quarantining coordinator.
//!
//! The invariant every test here enforces: under every *survivable* fault
//! the merged output is bit-identical to the serial run. The faults are
//! pure functions of the fault plan and a per-daemon connection counter,
//! so each scenario replays exactly.
//!
//! These daemons are in-process; every drain goes through a per-instance
//! flag or a `shutdown` frame, never [`seo_core::daemon::request_drain`]
//! (which is process-global and would drain the other tests' daemons).

use seo_core::batch::{BatchRunner, ScenarioSpec};
use seo_core::prelude::*;
use seo_core::shard::report_line;
use seo_core::transport::{
    health_request_frame, parse_worker_frame, read_frame, shutdown_request_frame, write_frame,
    JobRequest, WorkerMsg,
};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::{mpsc, Arc};
use std::time::Duration;

const SCENARIOS: usize = 6;
const SEED: u64 = 2023;

fn paper_runtime() -> RuntimeLoop {
    let config = SeoConfig::paper_defaults();
    let models = ModelSet::paper_setup(config.tau).expect("paper models");
    RuntimeLoop::new(config, models, OptimizerKind::Offloading).expect("valid runtime")
}

fn serial_reports() -> Vec<EpisodeReport> {
    BatchRunner::new(paper_runtime()).run_serial(&ScenarioSpec::paper_grid(SCENARIOS, SEED))
}

/// An in-process daemon plus the channel its `serve` result arrives on
/// (so drain tests can assert the loop actually returned, and cleanly).
struct Daemon {
    server: Arc<DaemonServer>,
    addr: SocketAddr,
    served: mpsc::Receiver<Result<(), TransportError>>,
}

fn spawn_daemon_at(addr: &str, config: DaemonConfig) -> Daemon {
    let server = Arc::new(DaemonServer::bind(addr, config).expect("bind daemon"));
    let addr = server.local_addr().expect("local addr");
    let runtime = Arc::new(paper_runtime());
    let (tx, served) = mpsc::channel();
    let handle = Arc::clone(&server);
    std::thread::spawn(move || {
        let _ = tx.send(handle.serve(runtime));
    });
    Daemon {
        server,
        addr,
        served,
    }
}

fn spawn_daemon(config: DaemonConfig) -> Daemon {
    spawn_daemon_at("127.0.0.1:0", config)
}

fn faulty(spec: &str) -> DaemonConfig {
    DaemonConfig {
        faults: Some(spec.parse().expect("fault grammar")),
        ..DaemonConfig::default()
    }
}

fn pool_of(hosts: &[(SocketAddr, u64)], retry: RetryPolicy) -> HostPool {
    HostPool::new(
        hosts
            .iter()
            .map(|&(addr, capacity)| HostSpec {
                addr: addr.to_string(),
                capacity,
            })
            .collect(),
    )
    .expect("valid pool")
    .with_retry(retry)
}

fn episodes_on(stats: &RemoteRunStats, addr: SocketAddr) -> usize {
    let addr = addr.to_string();
    stats
        .episodes_by_host
        .iter()
        .find(|(host, _)| *host == addr)
        .map(|&(_, count)| count)
        .unwrap_or_else(|| panic!("{addr} missing from episodes_by_host"))
}

/// A raw wire client: connect with sane timeouts, no coordinator logic.
fn open(addr: SocketAddr) -> TcpStream {
    let stream = TcpStream::connect(addr).expect("connect to daemon");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .and_then(|()| stream.set_write_timeout(Some(Duration::from_secs(30))))
        .expect("socket timeouts");
    stream
}

fn job_frame(start: usize, end: usize) -> Vec<u8> {
    JobRequest {
        scenarios: SCENARIOS,
        seed: SEED,
        plan: None,
        shard: Shard::new(start, end),
    }
    .to_frame()
}

fn next_msg(stream: &mut TcpStream) -> WorkerMsg {
    let payload = read_frame(stream).expect("read frame").expect("peer alive");
    parse_worker_frame(&payload).expect("worker frame")
}

/// The headline service contract: one daemon serves several consecutive
/// coordinator jobs (surviving a client that disconnects mid-job in
/// between), answers `health` with cumulative counters, and drains to a
/// clean `serve` return on a `shutdown` frame.
#[test]
fn daemon_serves_consecutive_jobs_answers_health_and_drains() {
    let serial = serial_reports();
    let daemon = spawn_daemon(DaemonConfig::default());
    let coordinator = RemoteCoordinator::new(pool_of(&[(daemon.addr, 1)], RetryPolicy::default()));
    for run in 0..3 {
        let (merged, stats) = coordinator.run(SCENARIOS, SEED).expect("daemon serves");
        assert_eq!(merged, serial, "run {run} must be bit-identical");
        assert!(stats.hosts_lost.is_empty(), "run {run} lost a host");
        assert_eq!(stats.reissues, 0, "run {run} needed a lease re-issue");
    }
    // A client that vanishes mid-job costs the daemon one connection
    // thread's cleanup, never the process.
    {
        let mut quitter = open(daemon.addr);
        write_frame(&mut quitter, &job_frame(0, SCENARIOS)).expect("send job");
        match next_msg(&mut quitter) {
            WorkerMsg::Report { index, .. } => assert_eq!(index, 0),
            other => panic!("expected the first report, got {other:?}"),
        }
        // Dropping the stream here aborts the job server-side.
    }
    let (merged, _) = coordinator
        .run(SCENARIOS, SEED)
        .expect("still serving after the disconnect");
    assert_eq!(merged, serial);
    // Health: liveness plus cumulative stats over everything above.
    let mut probe = open(daemon.addr);
    write_frame(&mut probe, &health_request_frame()).expect("send health");
    let payload = read_frame(&mut probe).expect("read frame").expect("reply");
    let health = HealthReport::from_frame(&payload).expect("health report");
    assert!(health.accepting, "not draining yet: {health:?}");
    // The fourth job's counter bump races the coordinator's return (the
    // daemon records it just after writing `done`), so health is only
    // guaranteed to have seen the first three runs; the fourth is checked
    // after the drain below.
    assert!(
        health.jobs_served >= 3,
        "three full jobs completed: {health:?}"
    );
    assert!(
        health.episodes_emitted >= 3 * SCENARIOS as u64,
        "each full job emitted {SCENARIOS} episodes: {health:?}"
    );
    // Shutdown: acked first (with the in-flight count), then drained.
    let mut shutdown = open(daemon.addr);
    write_frame(&mut shutdown, &shutdown_request_frame()).expect("send shutdown");
    let ack = read_frame(&mut shutdown).expect("read frame").expect("ack");
    let ack = String::from_utf8(ack).expect("ack is JSON text");
    assert!(ack.contains("shutdown"), "unexpected ack: {ack}");
    assert!(ack.contains("jobs_active"), "unexpected ack: {ack}");
    let drained = daemon
        .served
        .recv_timeout(Duration::from_secs(10))
        .expect("serve must return after the drain");
    drained.expect("a drain is a clean exit");
    assert_eq!(daemon.server.stats().jobs_active(), 0);
    // All four full jobs are on the books by now (short poll: the served
    // counter is bumped just after the active counter serve() waits on).
    let deadline = std::time::Instant::now() + Duration::from_secs(2);
    while daemon.server.stats().jobs_served() < 4 && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(
        daemon.server.stats().jobs_served() >= 4,
        "all four full jobs must be recorded after the drain"
    );
}

/// A host that is dead on arrival but comes up within the retry budget is
/// never lost: the coordinator's backoff absorbs the outage and the host
/// finishes the lease it pulled, so no re-issue happens at all.
#[test]
fn dead_on_arrival_daemon_recovering_within_budget_finishes_its_lease() {
    let serial = serial_reports();
    // Reserve a loopback port, then release it so the first connection
    // attempts are refused — a daemon that has not started yet.
    let late_addr = {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        listener.local_addr().expect("addr")
    };
    let healthy = spawn_daemon(DaemonConfig::default());
    // Bring the late daemon up ~300 ms in. With 6 attempts at 50 ms base
    // the coordinator knocks at ~0/50/150/350/750/1550 ms, so recovery
    // lands well inside the budget even on a slow machine.
    std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(300));
        spawn_daemon_at(&late_addr.to_string(), DaemonConfig::default());
    });
    let retry = RetryPolicy {
        attempts: 6,
        base_delay_ms: 50,
    };
    let coordinator = RemoteCoordinator::new(pool_of(&[(late_addr, 1), (healthy.addr, 1)], retry))
        .with_timeout(Duration::from_secs(5));
    let (merged, stats) = coordinator
        .run(SCENARIOS, SEED)
        .expect("recovers in budget");
    assert_eq!(merged, serial);
    assert!(
        stats.hosts_lost.is_empty(),
        "recovery within the budget is not a loss: {:?}",
        stats.hosts_lost
    );
    assert_eq!(stats.reissues, 0, "no re-issue when the host recovers");
    assert!(stats.retries >= 1, "the dead window must cost retries");
    assert_eq!(stats.quarantines, 0);
    // The late host held exactly one lease through its dead window (the
    // healthy peer drained the rest of the queue meanwhile) and finished
    // it after recovering instead of losing it to a steal.
    assert!(
        episodes_on(&stats, late_addr) >= 1,
        "the recovered host must finish the lease it held: {:?}",
        stats.episodes_by_host
    );
}

/// A host that exhausts its retry budget while the fleet is still making
/// progress is quarantined, not killed: once a clean `health` probe passes
/// after fresh fleet progress it rejoins the pull loop mid-run and serves
/// leases again.
#[test]
fn quarantined_daemon_is_probed_and_readmitted_mid_run() {
    let serial = serial_reports();
    // Refuse the first two connections (the job and its one retry), then
    // behave: the probe and every post-readmission lease go through. The
    // healthy peer is paced with a 200 ms stall per connection so the
    // queue is not drained before the flaky host rejoins.
    let flaky = spawn_daemon(faulty("refuse=2"));
    let healthy = spawn_daemon(faulty("stall-ms=200"));
    let retry = RetryPolicy {
        attempts: 2,
        base_delay_ms: 50,
    };
    let coordinator = RemoteCoordinator::new(pool_of(&[(flaky.addr, 1), (healthy.addr, 1)], retry));
    let (merged, stats) = coordinator.run(SCENARIOS, SEED).expect("readmission run");
    assert_eq!(merged, serial);
    assert!(stats.retries >= 1, "the refusals must burn retries");
    assert!(stats.quarantines >= 1, "budget exhaustion quarantines");
    assert!(stats.readmissions >= 1, "the probe must re-admit the host");
    assert!(stats.reissues >= 1, "the refused lease must be re-queued");
    assert_eq!(stats.hosts_lost.len(), 1);
    assert_eq!(stats.hosts_lost[0].addr, flaky.addr.to_string());
    assert_eq!(stats.hosts_lost[0].class, FaultClass::Transient);
    assert!(
        episodes_on(&stats, flaky.addr) > 0,
        "a re-admitted host must serve leases mid-run: {:?}",
        stats.episodes_by_host
    );
}

/// Drain semantics under load: a daemon with one slot and one stalled job
/// answers extra jobs with structured `busy` backpressure, acks a
/// `shutdown` while the job is still in flight, refuses new work during
/// the drain (cap 0), finishes the old job cleanly, and then returns from
/// `serve`.
#[test]
fn draining_daemon_refuses_new_jobs_while_finishing_the_old_one() {
    // The injected stall keeps job 1 in flight long enough to make the
    // admission-control race deterministic.
    let daemon = spawn_daemon(DaemonConfig {
        jobs: 1,
        ..faulty("stall-ms=800")
    });
    let mut stalled = open(daemon.addr);
    write_frame(&mut stalled, &job_frame(0, 1)).expect("send job 1");
    std::thread::sleep(Duration::from_millis(150));
    // Job 2 bounces off the cap.
    let mut rejected = open(daemon.addr);
    write_frame(&mut rejected, &job_frame(1, 2)).expect("send job 2");
    match next_msg(&mut rejected) {
        WorkerMsg::Busy { active, cap } => {
            assert_eq!(active, 1);
            assert_eq!(cap, 1);
        }
        other => panic!("expected busy at the cap, got {other:?}"),
    }
    // Shutdown is acked immediately, naming the in-flight job.
    let mut shutdown = open(daemon.addr);
    write_frame(&mut shutdown, &shutdown_request_frame()).expect("send shutdown");
    let ack = read_frame(&mut shutdown).expect("read frame").expect("ack");
    let ack = String::from_utf8(ack).expect("ack is JSON text");
    assert!(ack.contains("jobs_active"), "unexpected ack: {ack}");
    // New work during the drain is refused with an advertised cap of 0...
    let mut late = open(daemon.addr);
    write_frame(&mut late, &job_frame(2, 3)).expect("send job 3");
    match next_msg(&mut late) {
        WorkerMsg::Busy { cap, .. } => {
            assert_eq!(cap, 0, "draining daemons advertise cap 0");
        }
        other => panic!("expected busy during drain, got {other:?}"),
    }
    // ...while the in-flight job still finishes cleanly.
    match next_msg(&mut stalled) {
        WorkerMsg::Report { index, .. } => assert_eq!(index, 0),
        other => panic!("expected the stalled report, got {other:?}"),
    }
    match next_msg(&mut stalled) {
        WorkerMsg::Done { count } => assert_eq!(count, 1),
        other => panic!("expected done, got {other:?}"),
    }
    let drained = daemon
        .served
        .recv_timeout(Duration::from_secs(10))
        .expect("serve must return once the last job finishes");
    drained.expect("a drain is a clean exit");
    assert_eq!(daemon.server.stats().jobs_served(), 1);
}

/// A garbled report frame is a protocol violation, not a flaky
/// connection: the host dies immediately — no retry, no quarantine, no
/// probe — and its lease remnant is re-queued for the survivor to steal.
#[test]
fn garbled_report_is_fatal_and_never_retried() {
    let serial = serial_reports();
    // Garble the second report of every job; the seed keys the keystream.
    // Leases are pinned to 2 specs so every lease reaches a second report
    // (the auto chunk would resolve to 1 and never trip the fault).
    let corrupt = spawn_daemon(faulty("garble=1,seed=7"));
    let healthy = spawn_daemon(DaemonConfig::default());
    let pool = pool_of(
        &[(corrupt.addr, 2), (healthy.addr, 1)],
        RetryPolicy::default(),
    )
    .with_chunk(ChunkPolicy::Fixed(2));
    let coordinator = RemoteCoordinator::new(pool);
    let (merged, stats) = coordinator
        .run(SCENARIOS, SEED)
        .expect("survives the garble");
    assert_eq!(merged, serial);
    assert_eq!(stats.hosts_lost.len(), 1);
    assert_eq!(stats.hosts_lost[0].addr, corrupt.addr.to_string());
    assert_eq!(stats.hosts_lost[0].class, FaultClass::Fatal);
    assert_eq!(stats.retries, 0, "fatal faults must never be retried");
    assert_eq!(stats.quarantines, 0, "fatal faults skip quarantine");
    assert_eq!(stats.readmissions, 0, "dead hosts are never probed");
    assert!(stats.reissues >= 1, "the stranded remnant needs a re-issue");
}

/// The async executor under the chaos layer: a plan with
/// `exec.offload.async` served by daemons injecting connection stalls and
/// mid-job drops still merges bit-identically to the blocking serial run,
/// and every loss stays inside the existing transient taxonomy — no new
/// failure class leaks from the reactor.
#[test]
fn async_plan_survives_stalls_and_drops_with_a_bit_identical_merge() {
    let plan = SweepPlan::paper(SCENARIOS, SEED)
        .with_channels(vec![ChannelKind::Bursty])
        .with_offload(OffloadExec::Async { in_flight: 4 });
    let serial = plan
        .clone()
        .with_offload(OffloadExec::Blocking)
        .run_serial()
        .expect("blocking serial baseline");

    // One host stalls every report, one drops each job after its first
    // report (stranding remnants for re-issue), one behaves. Leases are
    // pinned to 2 specs so the dropper genuinely strands work.
    let stalling = spawn_daemon(faulty("stall-ms=100"));
    let dropping = spawn_daemon(faulty("drop-after=1"));
    let healthy = spawn_daemon(DaemonConfig::default());
    let pool = pool_of(
        &[(stalling.addr, 1), (dropping.addr, 1), (healthy.addr, 1)],
        RetryPolicy::default(),
    )
    .with_chunk(ChunkPolicy::Fixed(2));
    let (merged, stats) = RemoteCoordinator::new(pool)
        .run_plan(&plan)
        .expect("survivable chaos");
    assert_eq!(merged, serial, "chaos merge must reproduce serial");
    for lost in &stats.hosts_lost {
        assert_eq!(
            lost.class,
            FaultClass::Transient,
            "drops and stalls are transient, never a new class: {lost:?}"
        );
    }
}

/// A garbled frame under the async executor is exactly as fatal as under
/// the blocking loop: the host dies unretried, the remnant is re-issued,
/// and the merged stream still reproduces the blocking serial bytes.
#[test]
fn async_plan_garble_stays_fatal_and_the_survivor_completes_the_merge() {
    let plan = SweepPlan::paper(SCENARIOS, SEED).with_offload(OffloadExec::Async { in_flight: 4 });
    let serial = plan
        .clone()
        .with_offload(OffloadExec::Blocking)
        .run_serial()
        .expect("blocking serial baseline");

    let corrupt = spawn_daemon(faulty("garble=1,seed=7"));
    let healthy = spawn_daemon(DaemonConfig::default());
    let pool = pool_of(
        &[(corrupt.addr, 2), (healthy.addr, 1)],
        RetryPolicy::default(),
    )
    .with_chunk(ChunkPolicy::Fixed(2));
    let (merged, stats) = RemoteCoordinator::new(pool)
        .run_plan(&plan)
        .expect("survives the garble");
    assert_eq!(merged, serial);
    assert_eq!(stats.hosts_lost.len(), 1);
    assert_eq!(stats.hosts_lost[0].class, FaultClass::Fatal);
    assert_eq!(stats.retries, 0, "fatal faults must never be retried");
    assert!(stats.reissues >= 1, "the stranded remnant needs a re-issue");
}

/// Wire compatibility: the daemon serves a hand-assembled v1 (legacy
/// paper-grid) job frame and a v2 (plan-bearing) frame, answering each
/// with report payloads byte-for-byte identical to the serial wire lines.
#[test]
fn daemon_speaks_legacy_v1_and_plan_v2_frames() {
    let daemon = spawn_daemon(DaemonConfig::default());
    // v1: the exact bytes a pre-daemon coordinator sends.
    let serial = serial_reports();
    let mut stream = open(daemon.addr);
    let v1 = format!(
        r#"{{"v":1,"type":"job","scenarios":{SCENARIOS},"seed":{SEED},"start":0,"end":2}}"#
    );
    write_frame(&mut stream, v1.as_bytes()).expect("send v1 job");
    for (i, expected) in serial.iter().take(2).enumerate() {
        let payload = read_frame(&mut stream)
            .expect("read frame")
            .expect("report");
        assert_eq!(
            String::from_utf8(payload).expect("report is text"),
            report_line(i, expected),
            "v1 report {i} must be byte-for-byte the serial wire line"
        );
    }
    match next_msg(&mut stream) {
        WorkerMsg::Done { count } => assert_eq!(count, 2),
        other => panic!("expected done, got {other:?}"),
    }
    // v2: a plan-bearing job through the same daemon, same contract.
    let plan = SweepPlan::paper(3, SEED)
        .with_optimizers(vec![OptimizerKind::Offloading, OptimizerKind::ModelGating]);
    let plan_serial = plan.run_serial().expect("plan serial runs");
    let request = JobRequest {
        scenarios: plan.n_specs(),
        seed: SEED,
        plan: Some(plan.clone()),
        shard: Shard::new(0, plan_serial.len()),
    };
    let mut stream = open(daemon.addr);
    write_frame(&mut stream, &request.to_frame()).expect("send v2 job");
    for (i, expected) in plan_serial.iter().enumerate() {
        let payload = read_frame(&mut stream)
            .expect("read frame")
            .expect("report");
        assert_eq!(
            String::from_utf8(payload).expect("report is text"),
            report_line(i, expected),
            "v2 report {i} must be byte-for-byte the plan-serial wire line"
        );
    }
    match next_msg(&mut stream) {
        WorkerMsg::Done { count } => assert_eq!(count, plan_serial.len()),
        other => panic!("expected done, got {other:?}"),
    }
}

/// The retry and chunk policies ride the plan file: `exec.mode.hosts.retry`
/// and `exec.mode.hosts.chunk` parse, round-trip, and are validated with a
/// named field path both at parse time and for hand-built plans.
#[test]
fn plan_exec_hosts_retry_and_chunk_parse_validate_and_round_trip() {
    let text = r#"{"v":1,"exec":{"mode":{"hosts":{"v":1,
        "hosts":[{"addr":"10.0.0.1:7641","capacity":2}],
        "retry":{"attempts":4,"base_delay_ms":250},
        "chunk":3}}}}"#;
    let plan = SweepPlan::parse(text).expect("plan with retry and chunk");
    let ExecMode::Hosts(pool) = &plan.mode else {
        panic!("expected hosts mode, got {:?}", plan.mode);
    };
    assert_eq!(pool.retry().attempts, 4);
    assert_eq!(pool.retry().base_delay_ms, 250);
    assert_eq!(*pool.chunk(), ChunkPolicy::Fixed(3));
    let reparsed = SweepPlan::parse(&plan.to_json().render()).expect("round-trips");
    assert_eq!(reparsed, plan);
    // An invalid retry or chunk is a parse problem naming the field.
    let err = SweepPlan::parse(
        r#"{"v":1,"exec":{"mode":{"hosts":{"v":1,
            "hosts":[{"addr":"a:1","capacity":1}],
            "retry":{"attempts":0}}}}}"#,
    )
    .expect_err("zero attempts");
    assert!(err.to_string().contains("exec.mode.hosts"), "{err}");
    let err = SweepPlan::parse(
        r#"{"v":1,"exec":{"mode":{"hosts":{"v":1,
            "hosts":[{"addr":"a:1","capacity":1}],
            "chunk":0}}}}"#,
    )
    .expect_err("zero chunk");
    assert!(err.to_string().contains("exec.mode.hosts"), "{err}");
    // A hand-built plan is held to the same standard by validate().
    let pool = HostPool::new(vec![HostSpec {
        addr: "a:1".to_owned(),
        capacity: 1,
    }])
    .expect("valid pool")
    .with_retry(RetryPolicy {
        attempts: 0,
        base_delay_ms: 1,
    });
    let err = SweepPlan::paper(3, SEED)
        .with_mode(ExecMode::Hosts(pool))
        .validate()
        .expect_err("invalid hand-built retry");
    assert!(err.to_string().contains("exec.hosts.retry"), "{err}");
    let pool = HostPool::new(vec![HostSpec {
        addr: "a:1".to_owned(),
        capacity: 1,
    }])
    .expect("valid pool")
    .with_chunk(ChunkPolicy::Fixed(0));
    let err = SweepPlan::paper(3, SEED)
        .with_mode(ExecMode::Hosts(pool))
        .validate()
        .expect_err("invalid hand-built chunk");
    assert!(err.to_string().contains("exec.hosts.chunk"), "{err}");
}
