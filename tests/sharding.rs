//! In-process properties of the sharded sweep subsystem: shard planning
//! edge cases, wire-format round-trips, and the planner × merge composition
//! reproducing a serial sweep bit-for-bit.

use seo_core::batch::{BatchRunner, ScenarioSpec};
use seo_core::prelude::*;
use seo_core::runtime::RuntimeLoop;
use seo_core::shard::{
    parse_report_line, parse_spec_line, report_line, run_worker_shard, spec_line, Shard,
    ShardError, ShardPlan, ShardPlanner, StreamingMerge,
};

fn runner(optimizer: OptimizerKind) -> BatchRunner {
    let config = SeoConfig::paper_defaults();
    let models = ModelSet::paper_setup(config.tau).expect("paper models");
    BatchRunner::new(RuntimeLoop::new(config, models, optimizer).expect("valid runtime"))
}

#[test]
fn plans_cover_every_grid_exactly_once() {
    for n_specs in [1usize, 2, 5, 7, 16, 97] {
        for workers in [1usize, 2, 3, 4] {
            if workers > n_specs {
                continue;
            }
            let plan = ShardPlanner::new(workers).plan(n_specs).expect("valid");
            assert_eq!(plan.shards().len(), workers);
            let mut covered = vec![false; n_specs];
            for shard in plan.shards() {
                assert!(!shard.is_empty(), "no empty shards");
                for i in shard.indices() {
                    assert!(!covered[i], "index {i} covered twice");
                    covered[i] = true;
                }
            }
            assert!(covered.iter().all(|&c| c), "every index covered");
            let (min, max) = plan.shards().iter().fold((usize::MAX, 0), |(lo, hi), s| {
                (lo.min(s.len()), hi.max(s.len()))
            });
            assert!(max - min <= 1, "near-even split: {min}..{max}");
        }
    }
}

#[test]
fn planner_edge_cases() {
    // Empty grid: a valid, empty plan.
    let empty = ShardPlanner::new(8).plan(0).expect("empty grid");
    assert!(empty.shards().is_empty());
    // More workers than specs: rejected up front…
    assert!(matches!(
        ShardPlanner::new(8).plan(3),
        Err(ShardError::TooManyWorkers {
            workers: 8,
            specs: 3
        })
    ));
    // …unless explicitly clamped, which degrades to single-spec shards.
    let clamped = ShardPlanner::new(8).plan_clamped(3).expect("clamps");
    assert_eq!(clamped.shards().len(), 3);
    assert!(clamped.shards().iter().all(|s| s.len() == 1));
    // Single-spec shards at exact parity.
    let singles = ShardPlanner::new(4).plan(4).expect("valid");
    assert!(singles.shards().iter().all(|s| s.len() == 1));
}

#[test]
fn explicit_plan_validation_catches_misconfigurations() {
    let overlap = vec![Shard::new(0, 3), Shard::new(2, 5)];
    assert!(matches!(
        ShardPlan::from_shards(overlap, 5),
        Err(ShardError::ShardOverlap { index: 1 })
    ));
    let gap = vec![Shard::new(0, 2), Shard::new(3, 5)];
    assert!(matches!(
        ShardPlan::from_shards(gap, 5),
        Err(ShardError::ShardGap { index: 1, .. })
    ));
    let empty = vec![Shard::new(0, 2), Shard::new(2, 2), Shard::new(2, 4)];
    assert!(matches!(
        ShardPlan::from_shards(empty, 4),
        Err(ShardError::EmptyShard { index: 1 })
    ));
    let short = vec![Shard::new(0, 2)];
    assert!(ShardPlan::from_shards(short, 4).is_err(), "uncovered tail");
}

#[test]
fn spec_wire_round_trips_across_the_paper_grid() {
    for spec in ScenarioSpec::grid(&[0, 2, 4], 5, 2023) {
        assert_eq!(parse_spec_line(&spec_line(&spec)).expect("parses"), spec);
    }
}

#[test]
fn report_wire_round_trip_is_exact_for_real_episodes() {
    let runner = runner(OptimizerKind::Offloading);
    // 0-obstacle episodes carry min_distance = +inf; 2/4-obstacle episodes
    // carry dense finite floats. Both must survive the wire exactly.
    for (i, spec) in ScenarioSpec::grid(&[0, 2, 4], 2, 7).iter().enumerate() {
        let report = runner.runtime().run_episode(&spec.world(), spec.seed);
        let line = report_line(i, &report);
        let (index, back) = parse_report_line(&line).expect("parses");
        assert_eq!(index, i);
        assert_eq!(back, report, "round-trip must be exact for {spec}");
    }
}

/// The tentpole property: shard the grid, run every shard through the
/// worker path, stream the (deliberately interleaved) lines into the merge —
/// and the result is bit-identical to `run_serial`, for every worker count
/// and uneven shard sizes.
#[test]
fn planner_merge_composition_reproduces_serial_sweep() {
    let runner = runner(OptimizerKind::Offloading);
    let specs = ScenarioSpec::grid(&[0, 2, 4], 2, 2023); // 6 specs
    let serial = runner.run_serial(&specs);
    for workers in [1usize, 2, 4] {
        let plan = ShardPlanner::new(workers).plan(specs.len()).expect("plan");
        // Collect every shard's wire output…
        let mut outputs: Vec<String> = Vec::new();
        for &shard in plan.shards() {
            let mut buf = Vec::new();
            run_worker_shard(runner.runtime(), &specs, shard, &mut buf).expect("worker runs");
            outputs.push(String::from_utf8(buf).expect("utf8"));
        }
        // …and feed the lines in a worst-case arrival order: shards
        // reversed, so high indices land before low ones.
        let mut merge = StreamingMerge::new(specs.len());
        let mut drained = Vec::new();
        for output in outputs.iter().rev() {
            for line in output.lines() {
                let (index, report) = parse_report_line(line).expect("valid line");
                merge.accept(index, report).expect("accepted");
                drained.extend(merge.drain_ready());
            }
        }
        drained.extend(merge.finish().expect("complete"));
        assert_eq!(
            drained,
            serial,
            "{workers} workers (shards {:?}) must reproduce the serial sweep",
            plan.shards()
        );
    }
}

#[test]
fn merge_rejects_duplicate_index_and_keeps_the_original() {
    let runner = runner(OptimizerKind::Offloading);
    let specs = ScenarioSpec::grid(&[0, 2], 1, 5);
    let reports = runner.run_serial(&specs);
    assert_ne!(reports[0], reports[1], "distinct reports for the test");

    let mut merge = StreamingMerge::new(specs.len());
    merge.accept(0, reports[0].clone()).expect("first accept");
    // A duplicate is a protocol violation — NOT a silent last-write-wins:
    // re-sending index 0 with a *different* report must be rejected…
    assert_eq!(
        merge.accept(0, reports[1].clone()),
        Err(ShardError::DuplicateIndex { index: 0 })
    );
    // …and must not bump the received count.
    assert_eq!(merge.received(), 1);
    merge.accept(1, reports[1].clone()).expect("second accept");
    // The original report survived the duplicate attempt untouched.
    assert_eq!(merge.finish().expect("complete"), reports);
}

#[test]
fn merge_rejects_duplicates_even_after_draining() {
    let runner = runner(OptimizerKind::Offloading);
    let specs = ScenarioSpec::grid(&[0], 2, 9);
    let reports = runner.run_serial(&specs);
    let mut merge = StreamingMerge::new(specs.len());
    merge.accept(0, reports[0].clone()).expect("ok");
    assert_eq!(merge.drain_ready().len(), 1, "prefix released");
    // The slot is gone, but the index is still remembered as taken.
    assert_eq!(
        merge.accept(0, reports[1].clone()),
        Err(ShardError::DuplicateIndex { index: 0 })
    );
}

#[test]
fn merge_rejects_out_of_range_index_without_corrupting_state() {
    let runner = runner(OptimizerKind::Offloading);
    let specs = ScenarioSpec::grid(&[0], 2, 3);
    let reports = runner.run_serial(&specs);
    let mut merge = StreamingMerge::new(specs.len());
    // One-past-the-end and far-out indices are both named violations.
    for bad in [specs.len(), specs.len() + 100] {
        assert_eq!(
            merge.accept(bad, reports[0].clone()),
            Err(ShardError::IndexOutOfRange {
                index: bad,
                total: specs.len()
            })
        );
    }
    // The rejected reports left no trace: the merge still completes with
    // exactly the in-range accepts.
    assert_eq!(merge.received(), 0);
    merge.accept(0, reports[0].clone()).expect("ok");
    merge.accept(1, reports[1].clone()).expect("ok");
    assert_eq!(merge.finish().expect("complete"), reports);
}

#[test]
fn duplicate_wire_lines_surface_as_protocol_violations() {
    // End to end through the wire format: a worker stream that repeats an
    // index must fail the merge loudly, never overwrite silently.
    let runner = runner(OptimizerKind::Offloading);
    let specs = ScenarioSpec::grid(&[0, 2], 1, 2023);
    let mut buf = Vec::new();
    run_worker_shard(runner.runtime(), &specs, Shard::new(0, 2), &mut buf).expect("runs");
    let text = String::from_utf8(buf).expect("utf8");
    let mut lines: Vec<&str> = text.lines().collect();
    lines.push(lines[0]); // replayed line, as a buggy transport might

    let mut merge = StreamingMerge::new(specs.len());
    let mut violation = None;
    for line in lines {
        let (index, report) = parse_report_line(line).expect("valid line");
        if let Err(e) = merge.accept(index, report) {
            violation = Some(e);
        }
    }
    assert_eq!(violation, Some(ShardError::DuplicateIndex { index: 0 }));
}

#[test]
fn merge_streams_prefixes_incrementally() {
    let runner = runner(OptimizerKind::ModelGating);
    let specs = ScenarioSpec::grid(&[0, 2], 2, 11);
    let reports = runner.run_serial(&specs);
    let mut merge = StreamingMerge::new(specs.len());
    // Arrival order 1, 0, 3, 2 — prefixes release as soon as contiguous.
    merge.accept(1, reports[1].clone()).expect("ok");
    assert_eq!(merge.drain_ready().len(), 0);
    merge.accept(0, reports[0].clone()).expect("ok");
    assert_eq!(merge.drain_ready().len(), 2, "0 and 1 release together");
    merge.accept(3, reports[3].clone()).expect("ok");
    assert_eq!(merge.drain_ready().len(), 0);
    merge.accept(2, reports[2].clone()).expect("ok");
    assert_eq!(merge.finish().expect("complete").len(), 2);
}
