//! Streaming-results subsystem tests: summary-mode output is byte-identical
//! across all four engines (including under a mid-lease host kill), the
//! `report` plan section round-trips and validates, and — at the wire level
//! — pure `summary` jobs ship exactly one sketch fragment per connection
//! with **no** per-episode NDJSON crossing the host boundary.

use seo_core::prelude::*;
use seo_core::transport::{
    parse_worker_frame, read_frame, write_frame, HostPool, HostSpec, JobRequest, RemoteCoordinator,
    TransportError, WorkerMsg,
};
use seo_integration::{assert_summary_bit_identical, spawn_loopback_worker};
use std::net::TcpStream;

const SCENARIOS: usize = 6;
const SEED: u64 = 2023;

/// A two-cell grid (τ = 20 ms and 25 ms) so the fold order across cells
/// matters, in pure summary mode.
fn summary_plan() -> SweepPlan {
    SweepPlan::paper(SCENARIOS, SEED)
        .with_tau_ms(vec![20.0, 25.0])
        .with_report(ReportSpec::new())
}

/// Runs `request` against a fresh loopback worker and returns every frame
/// the worker sent, in order, ending with its `done` frame.
fn collect_frames(request: &JobRequest) -> Vec<WorkerMsg> {
    let addr = spawn_loopback_worker();
    let mut stream = TcpStream::connect(addr).expect("connect loopback");
    write_frame(&mut stream, &request.to_frame()).expect("job frame");
    let mut frames = Vec::new();
    while let Some(payload) = read_frame(&mut stream).expect("readable frame") {
        let msg = parse_worker_frame(&payload).expect("parseable frame");
        let done = matches!(msg, WorkerMsg::Done { .. });
        frames.push(msg);
        if done {
            break;
        }
    }
    frames
}

fn job_for(plan: &SweepPlan) -> JobRequest {
    JobRequest {
        scenarios: plan.n_specs(),
        seed: plan.axes.seeds.base,
        plan: Some(plan.clone()),
        shard: Shard::new(0, plan.n_specs()),
    }
}

/// The headline invariant: the rendered per-cell summary is byte-identical
/// across serial, threads, the process-engine wire composition (worst-case
/// reversed fragment arrival), and loopback hosts — where one of the two
/// hosts is killed mid-lease on every connection, so the exactly-once
/// fold under re-issued leases is asserted too.
#[test]
fn summary_is_bit_identical_across_engines_and_mid_lease_kills() {
    let plan = summary_plan();
    let lines = assert_summary_bit_identical(&plan);
    assert_eq!(
        lines.len(),
        plan.axes.n_cells(),
        "one summary line per grid cell"
    );
    // Re-running the identical plan reproduces the identical bytes.
    assert_eq!(
        assert_summary_bit_identical(&plan),
        lines,
        "summary output is stable across repeated runs"
    );
}

/// Wire-level statement of the acceptance criterion: in pure `summary`
/// mode no per-episode NDJSON crosses the host boundary — the worker ships
/// exactly one all-or-nothing `summary` frame for the whole shard, then
/// `done`.
#[test]
fn summary_job_ships_one_fragment_and_no_episode_frames() {
    let plan = summary_plan();
    let frames = collect_frames(&job_for(&plan));

    assert!(
        !frames.iter().any(|f| matches!(f, WorkerMsg::Report { .. })),
        "per-episode NDJSON crossed the host boundary in summary mode: {frames:?}"
    );
    let [WorkerMsg::Summary { shard, cells }, WorkerMsg::Done { count }] = frames.as_slice() else {
        panic!("expected exactly [summary, done], got {frames:?}");
    };
    assert_eq!(
        *shard,
        Shard::new(0, plan.n_specs()),
        "fragment covers the whole shard"
    );
    assert_eq!(*count, plan.n_specs(), "done still counts episodes run");
    assert!(!cells.is_empty(), "fragment carries the non-empty cells");

    // The shipped fragment folds to the serial fold's bytes.
    let mut serial = plan.run_summary();
    plan.run_range(Shard::new(0, plan.n_specs()), plan.kernel, |i, report| {
        serial.record(i, &report);
        true
    })
    .expect("serial fold");
    let mut remote = plan.run_summary();
    remote.fold_fragment(cells).expect("fragment folds");
    let quantiles = &plan.report.as_ref().expect("report section").quantiles;
    assert_eq!(
        remote.lines(quantiles),
        serial.lines(quantiles),
        "wire fragment reproduces the serial fold byte-for-byte"
    );
}

/// `both` mode keeps the episode wire protocol unchanged: the worker
/// streams reports and never ships a summary frame (the coordinator folds
/// sketches from the merged in-order stream instead).
#[test]
fn both_mode_keeps_the_episode_wire_protocol() {
    let plan = SweepPlan::paper(6, SEED).with_report(ReportSpec::new().with_mode(ReportMode::Both));
    assert!(plan.emits_episodes() && plan.emits_summary());
    let frames = collect_frames(&job_for(&plan));

    assert!(
        !frames
            .iter()
            .any(|f| matches!(f, WorkerMsg::Summary { .. })),
        "an episode-streaming job must not ship summary frames: {frames:?}"
    );
    let reports = frames
        .iter()
        .filter(|f| matches!(f, WorkerMsg::Report { .. }))
        .count();
    assert_eq!(reports, plan.n_specs(), "every episode streamed");
    assert!(
        matches!(frames.last(), Some(WorkerMsg::Done { count }) if *count == plan.n_specs()),
        "stream ends with done: {frames:?}"
    );
}

/// `run_plan_summary` is only for pure summary plans; an episode-streaming
/// plan is a configuration error, not a silent downgrade.
#[test]
fn run_plan_summary_rejects_episode_streaming_plans() {
    let pool = HostPool::new(vec![HostSpec {
        addr: spawn_loopback_worker().to_string(),
        capacity: 1,
    }])
    .expect("valid pool");
    let err = RemoteCoordinator::new(pool)
        .run_plan_summary(&SweepPlan::paper(3, SEED))
        .expect_err("episodes-mode plan rejected");
    assert!(
        matches!(&err, TransportError::Config { .. }),
        "expected a config error, got {err:?}"
    );
    assert!(err.to_string().contains("summary"), "{err}");
}

/// The `report` plan section round-trips through JSON, resolves defaults,
/// and names its fields in validation errors.
#[test]
fn report_section_round_trips_and_validates() {
    let text = r#"{
        "v": 1,
        "axes": {"seeds": {"base": 2023, "runs": 6}},
        "report": {"mode": "summary", "quantiles": [0.5, 0.9, 0.99],
                   "book": "results/results.md"}
    }"#;
    let plan = SweepPlan::parse(text).expect("parses");
    let report = plan.report.as_ref().expect("report section kept");
    assert_eq!(report.mode, ReportMode::Summary);
    assert_eq!(report.quantiles, vec![0.5, 0.9, 0.99]);
    assert_eq!(report.book.as_deref(), Some("results/results.md"));
    assert!(!plan.emits_episodes() && plan.emits_summary());
    // The resolved one-line form `--plan --check` prints.
    assert_eq!(
        report.to_string(),
        "mode=summary quantiles=[0.5, 0.9, 0.99] book=results/results.md"
    );
    // Save/load round-trip preserves the section exactly.
    let reloaded = SweepPlan::parse(&plan.to_json().render_pretty()).expect("round-trips");
    assert_eq!(reloaded, plan);

    // A plan without the section keeps the classic episodes-only behavior.
    let classic = SweepPlan::paper(3, SEED);
    assert!(classic.emits_episodes() && !classic.emits_summary());

    // Problems are named `report.FIELD`.
    for (body, field) in [
        (r#"{"mode": "sometimes"}"#, "report.mode"),
        (r#"{"quantiles": [1.5]}"#, "report.quantiles[0]"),
        (r#"{"quantiles": "median"}"#, "report.quantiles"),
        (r#"{"book": ""}"#, "report.book"),
        (r#"{"bogus": 1}"#, "report.bogus"),
        (r#"7"#, "report"),
    ] {
        let err = SweepPlan::parse(&format!(r#"{{"v":1,"report":{body}}}"#))
            .expect_err("invalid report section rejected");
        assert!(
            err.to_string().contains(field),
            "expected '{field}' in: {err}"
        );
    }
}
