//! Workspace-level properties of the falsification engine: the search is a
//! pure function of its `search_seed`, every emitted counterexample plan
//! replays bit-identically through the plain sweep path, the committed
//! regression corpus stays pinned to the byte, and a bursty-channel grid
//! merges bit-identically across all four execution engines.

use seo_core::falsify::falsify;
use seo_core::prelude::*;
use seo_core::shard::{parse_report_line, report_line};
use seo_core::transport::{HostPool, HostSpec, RemoteCoordinator, WorkerServer};
use std::net::SocketAddr;
use std::path::Path;
use std::sync::Arc;

/// The committed falsify preset, with the search budget overridden so test
/// runs stay cheap.
fn demo_plan(budget: usize, search_seed: u64) -> SweepPlan {
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../examples/plans/falsify-demo.json"
    );
    let text = std::fs::read_to_string(path).expect("committed falsify preset");
    let mut plan = SweepPlan::parse(&text).expect("preset parses");
    let spec = plan.falsify.expect("preset has a falsify section");
    plan.falsify = Some(FalsifySpec {
        budget,
        search_seed,
        ..spec
    });
    plan
}

/// Starts an in-process worker server on an OS-assigned loopback port. Plan
/// jobs ship the plan inline, so the legacy runtime passed to `serve` is
/// never consulted here.
fn spawn_worker() -> SocketAddr {
    let server = WorkerServer::bind("127.0.0.1:0").expect("bind loopback");
    let addr = server.local_addr().expect("local addr");
    let config = SeoConfig::paper_defaults();
    let models = ModelSet::paper_setup(config.tau).expect("paper models");
    let runtime =
        Arc::new(RuntimeLoop::new(config, models, OptimizerKind::Offloading).expect("runtime"));
    std::thread::spawn(move || {
        let _ = server.serve(runtime, None);
    });
    addr
}

/// The determinism tentpole: two falsification runs of the same plan with
/// the same `search_seed` produce byte-identical counterexample streams and
/// byte-identical search provenance.
#[test]
fn falsification_is_a_pure_function_of_the_search_seed() {
    let plan = demo_plan(16, 7);
    let first = falsify(&plan).expect("search runs");
    let second = falsify(&plan).expect("search runs again");

    let stream = |outcome: &FalsifyOutcome| -> Vec<String> {
        outcome
            .counterexamples
            .iter()
            .enumerate()
            .map(|(i, cx)| cx.line(i))
            .collect()
    };
    assert!(
        !first.counterexamples.is_empty(),
        "the committed preset must expose at least one violation"
    );
    assert_eq!(stream(&first), stream(&second), "counterexample stream");
    assert_eq!(
        first.stats.to_json().render(),
        second.stats.to_json().render(),
        "search provenance"
    );

    // A different seed explores differently: the evaluation trace must not
    // be byte-identical (the streams may still converge on the same
    // minima, the path there must not).
    let other = falsify(&demo_plan(16, 8)).expect("search runs");
    assert_ne!(
        first.stats.to_json().render(),
        other.stats.to_json().render(),
        "search seed must steer the search"
    );
}

/// The replay property: for several search seeds, every emitted one-cell
/// plan re-run through the plain serial sweep path reproduces the recorded
/// violating episode to the byte, and the objective recomputed from the
/// replayed report equals the recorded value to the bit.
#[test]
fn every_emitted_counterexample_replays_bit_identically() {
    for search_seed in [1, 7, 23] {
        let plan = demo_plan(10, search_seed);
        let outcome = falsify(&plan).expect("search runs");
        for cx in &outcome.counterexamples {
            let replayed = cx.plan.run_serial().expect("one-cell plan runs");
            assert_eq!(replayed.len(), 1, "a counterexample plan is one episode");
            assert_eq!(
                report_line(0, &replayed[0]),
                cx.expected_line(),
                "seed {search_seed}: replay must be bit-identical"
            );
            let value = cx.objective.value(&replayed[0]);
            assert!(
                value.to_bits() == cx.value.to_bits(),
                "seed {search_seed}: objective {} vs recorded {}",
                value,
                cx.value
            );
            assert!(value < plan.falsify.expect("spec").threshold, "violates");
        }
    }
}

/// The committed regression corpus: each `examples/plans/counterexamples/`
/// plan replays to exactly the bytes of its `.expected.ndjson` — the
/// recorded violating metric is pinned to the bit across refactors.
#[test]
fn committed_counterexample_corpus_replays_to_the_recorded_bytes() {
    let dir = Path::new(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../examples/plans/counterexamples"
    ));
    let mut plans: Vec<_> = std::fs::read_dir(dir)
        .expect("corpus directory")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| {
            p.extension().is_some_and(|e| e == "json")
                && !p.to_string_lossy().ends_with(".expected.ndjson")
        })
        .collect();
    plans.sort();
    assert!(
        plans.len() >= 2,
        "the corpus commits at least two counterexamples, found {plans:?}"
    );

    for path in plans {
        let text = std::fs::read_to_string(&path).expect("corpus plan");
        let plan = SweepPlan::parse(&text).expect("corpus plan parses");
        assert_eq!(plan.n_specs(), 1, "{path:?} must be a one-cell plan");

        let expected_path = path.with_extension("expected.ndjson");
        let expected = std::fs::read_to_string(&expected_path).expect("recorded episode");
        let replayed = plan.run_serial().expect("replays");
        assert_eq!(
            report_line(0, &replayed[0]),
            expected.trim_end(),
            "{path:?} must replay to its recorded bytes"
        );
    }
}

/// Async offload must not perturb the falsification search: the same
/// violations fall out in the same order with a byte-identical evaluation
/// trace, and every emitted replay plan inherits the async exec section so
/// its regression replay exercises the reactor path.
#[test]
fn falsify_search_is_identical_with_async_offload_on_and_off() {
    let blocking = demo_plan(12, 7);
    let with_async = blocking
        .clone()
        .with_offload(OffloadExec::Async { in_flight: 8 });
    let off = falsify(&blocking).expect("blocking search");
    let on = falsify(&with_async).expect("async search");

    assert_eq!(
        off.stats.to_json().render(),
        on.stats.to_json().render(),
        "async offload must not steer the search"
    );
    assert!(!off.counterexamples.is_empty(), "preset exposes violations");
    assert_eq!(off.counterexamples.len(), on.counterexamples.len());
    for (a, b) in off.counterexamples.iter().zip(&on.counterexamples) {
        assert_eq!(a.expected_line(), b.expected_line(), "violating episode");
        assert_eq!(a.value.to_bits(), b.value.to_bits(), "objective value");
        assert_eq!((a.obstacles, a.seed), (b.obstacles, b.seed), "scenario");
        assert_eq!(
            b.plan.offload,
            OffloadExec::Async { in_flight: 8 },
            "replay plan must inherit the async exec"
        );
        let replayed = b.plan.run_serial().expect("async replay runs");
        assert_eq!(
            report_line(0, &replayed[0]),
            b.expected_line(),
            "async replay must be bit-identical"
        );
    }
}

/// The four-engine property with the new axes in play: a grid over the
/// bursty Gilbert–Elliott channel and moving-obstacle traffic merges
/// bit-identically — field-wise and on the wire — through the serial loop,
/// the thread pool, the sharded worker/merge composition (the process
/// engine's in-process core), and loopback TCP hosts.
#[test]
fn bursty_traffic_grid_merges_bit_identically_across_all_four_engines() {
    let plan = SweepPlan::paper(2, 2023)
        .with_obstacles(vec![0, 2])
        .with_tau_ms(vec![20.0])
        .with_channels(vec![ChannelKind::Bursty])
        .with_traffic(vec![
            TrafficKind::Static,
            TrafficKind::Crossing {
                count: 2,
                speed_mps: 3.0,
            },
        ]);
    let serial = plan.run_serial().expect("serial runs");
    assert_eq!(serial.len(), plan.n_specs());

    // Engine 2: the in-process thread pool.
    assert_eq!(plan.run_threads(3).expect("threads run"), serial);

    // Engine 3: the sharded worker path — every shard rendered to wire
    // lines, fed to the streaming merge in worst-case (reversed) order.
    let n = plan.n_specs();
    let shard_plan = ShardPlanner::new(3).plan(n).expect("shard plan");
    let mut merge = StreamingMerge::new(n);
    let mut drained = Vec::new();
    for &shard in shard_plan.shards().iter().rev() {
        let mut lines = Vec::new();
        plan.run_range(shard, plan.kernel, |i, report| {
            lines.push(report_line(i, &report));
            true
        })
        .expect("shard runs");
        for line in &lines {
            let (index, report) = parse_report_line(line).expect("valid wire line");
            merge.accept(index, report).expect("accepted");
            drained.extend(merge.drain_ready());
        }
    }
    drained.extend(merge.finish().expect("complete"));
    assert_eq!(drained, serial, "sharded merge must reproduce serial");

    // Engine 4: loopback TCP hosts pulling plan-inline jobs.
    let pool = HostPool::new(
        (0..2)
            .map(|_| HostSpec {
                addr: spawn_worker().to_string(),
                capacity: 1,
            })
            .collect(),
    )
    .expect("valid pool");
    let (merged, stats) = RemoteCoordinator::new(pool).run_plan(&plan).expect("runs");
    assert!(stats.hosts_lost.is_empty(), "no losses expected");
    assert_eq!(merged, serial, "hosts merge must reproduce serial");
    for (i, (m, s)) in merged.iter().zip(&serial).enumerate() {
        assert_eq!(report_line(i, m), report_line(i, s), "wire line {i}");
    }
}
