//! Property-based tests spanning crates: scheduler/energy invariants that
//! must hold for arbitrary model mixes and deadline sequences, driven by a
//! seeded generator loop.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use seo_core::config::SeoConfig;
use seo_core::discretize::{discretize_deadline, discretize_period};
use seo_core::model::ModelId;
use seo_core::optimizer::{full_slot_cost, optimized_slot_cost, OptimizerKind};
use seo_core::scheduler::{SafeScheduler, SlotKind};
use seo_platform::units::Seconds;
use seo_safety::interval::SafeIntervalEvaluator;
use seo_sim::sensing::RelativeObservation;
use seo_sim::vehicle::Control;

const CASES: usize = 100;

fn deltas(rng: &mut StdRng) -> Vec<u32> {
    let n = rng.gen_range(1usize..5);
    (0..n).map(|_| rng.gen_range(1u32..5)).collect()
}

fn deadline_seq(rng: &mut StdRng) -> Vec<u32> {
    let n = rng.gen_range(1usize..40);
    (0..n).map(|_| rng.gen_range(0u32..6)).collect()
}

#[test]
fn scheduler_never_schedules_optimized_without_room() {
    let mut rng = StdRng::seed_from_u64(50);
    for _ in 0..CASES {
        let models: Vec<(ModelId, u32)> = deltas(&mut rng)
            .iter()
            .enumerate()
            .map(|(i, &d)| (ModelId(i), d))
            .collect();
        let deadlines = deadline_seq(&mut rng);
        let mut scheduler = SafeScheduler::new(models);
        let mut queue = deadlines.iter().copied().cycle();
        for _ in 0..60 {
            let plan = scheduler.plan_step(|| queue.next().expect("cycled"));
            for (id, kind) in &plan.slots {
                let delta_i = scheduler.delta_i(*id).expect("registered");
                if *kind == SlotKind::Optimized {
                    assert!(
                        delta_i < plan.delta_max,
                        "optimized slot with delta_i {delta_i} >= delta_max {}",
                        plan.delta_max
                    );
                }
                if *kind == SlotKind::FullDeadline {
                    assert_eq!(plan.n, plan.delta_max - delta_i);
                }
            }
        }
    }
}

#[test]
fn scheduler_intervals_always_make_progress() {
    let mut rng = StdRng::seed_from_u64(51);
    for _ in 0..CASES {
        let models: Vec<(ModelId, u32)> = deltas(&mut rng)
            .iter()
            .enumerate()
            .map(|(i, &d)| (ModelId(i), d))
            .collect();
        let deadlines = deadline_seq(&mut rng);
        let mut scheduler = SafeScheduler::new(models);
        let mut queue = deadlines.iter().copied().cycle();
        let mut since_start = 0usize;
        for _ in 0..200 {
            let plan = scheduler.plan_step(|| queue.next().expect("cycled"));
            if plan.interval_started {
                since_start = 0;
            } else {
                since_start += 1;
            }
            // An interval can never outlive its deadline cap (deadlines are
            // at most 5 here).
            assert!(since_start <= 5, "interval failed to terminate");
        }
    }
}

#[test]
fn eq4_and_eq5_are_consistent() {
    let mut rng = StdRng::seed_from_u64(52);
    for _ in 0..500 {
        let p_ms = rng.gen_range(1.0..200.0);
        let tau_ms = rng.gen_range(1.0..50.0);
        let p = Seconds::from_millis(p_ms);
        let tau = Seconds::from_millis(tau_ms);
        let delta_i = discretize_period(p, tau);
        // Eq. (4) never undershoots: delta_i * tau >= p (up to float noise).
        assert!(f64::from(delta_i) * tau_ms >= p_ms - 1e-6);
        // And never overshoots by more than one slot.
        assert!(f64::from(delta_i.saturating_sub(1)) * tau_ms < p_ms + 1e-6);
        // Eq. (5) never overshoots: delta_max * tau <= Delta (up to noise).
        let delta_max = discretize_deadline(p, tau);
        assert!(f64::from(delta_max) * tau_ms <= p_ms + 1e-6);
    }
}

#[test]
fn optimized_slots_never_cost_more_than_full() {
    use seo_core::config::EnergyAccounting;
    use seo_platform::sensor::SensorSpec;
    let mut rng = StdRng::seed_from_u64(53);
    for _ in 0..CASES {
        let gating_level = rng.gen_range(0.0..1.0);
        let sensor_case = rng.gen_range(0usize..3);
        let sensor = [
            SensorSpec::zed_camera(),
            SensorSpec::navtech_cts350x(),
            SensorSpec::velodyne_hdl32e(),
        ][sensor_case]
            .clone();
        let config = SeoConfig::paper_defaults()
            .with_gating_level(gating_level)
            .with_accounting(EnergyAccounting::WithSensor);
        let model = seo_core::model::PipelineModel::paper_detector(1, config.tau)
            .expect("valid")
            .with_sensor(sensor);
        let full = full_slot_cost(&model, &config).total();
        for kind in [OptimizerKind::ModelGating, OptimizerKind::SensorGating] {
            let optimized = optimized_slot_cost(kind, &model, &config).total();
            assert!(
                optimized.as_joules() <= full.as_joules() + 1e-12,
                "{kind}: optimized {optimized} > full {full}"
            );
        }
    }
}

#[test]
fn safe_interval_is_monotone_in_distance() {
    let mut rng = StdRng::seed_from_u64(54);
    let evaluator = SafeIntervalEvaluator::default();
    for _ in 0..CASES {
        let d1 = rng.gen_range(3.0..50.0);
        let gap = rng.gen_range(1.0..20.0);
        let speed = rng.gen_range(1.0..14.0);
        let near = RelativeObservation {
            distance: d1,
            bearing: 0.0,
            speed,
        };
        let far = RelativeObservation {
            distance: d1 + gap,
            bearing: 0.0,
            speed,
        };
        let control = Control::new(0.0, 0.5);
        let t_near = evaluator.safe_interval_relative(&near, control);
        let t_far = evaluator.safe_interval_relative(&far, control);
        assert!(
            t_far >= t_near,
            "farther obstacle gave shorter interval: {t_far} < {t_near}"
        );
    }
}

#[test]
fn deadline_never_exceeds_horizon() {
    let mut rng = StdRng::seed_from_u64(55);
    let evaluator = SafeIntervalEvaluator::default();
    for _ in 0..CASES {
        let obs = RelativeObservation {
            distance: rng.gen_range(0.0..80.0),
            bearing: rng.gen_range(-3.0..3.0),
            speed: rng.gen_range(0.0..15.0),
        };
        let t = evaluator.safe_interval_relative(&obs, Control::new(0.0, 0.5));
        assert!(t <= evaluator.horizon());
        assert!(t >= Seconds::ZERO);
    }
}
