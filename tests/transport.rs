//! Loopback-TCP properties of the multi-host sweep transport: host-pool
//! validation, frame round-trips, pull-based lease scheduling, and the
//! tentpole guarantee — the remote merge is bit-identical to
//! `BatchRunner::run_serial` under 1/2/3 hosts, every chunk size, and
//! injected mid-stream host failures (kills, dead hosts, stalls).

use seo_core::batch::{BatchRunner, ScenarioSpec};
use seo_core::prelude::*;
use seo_core::runtime::RuntimeLoop;
use seo_core::shard::report_line;
use seo_core::transport::{
    done_frame, error_frame, parse_worker_frame, read_frame, write_frame, HostPool, HostSpec,
    JobRequest, RemoteCoordinator, TransportError, WorkerMsg, WorkerServer,
};
use std::io::Cursor;
use std::net::{SocketAddr, TcpListener};
use std::sync::Arc;
use std::time::Duration;

const SCENARIOS: usize = 6;
const SEED: u64 = 2023;

fn paper_runtime() -> RuntimeLoop {
    let config = SeoConfig::paper_defaults();
    let models = ModelSet::paper_setup(config.tau).expect("paper models");
    RuntimeLoop::new(config, models, OptimizerKind::Offloading).expect("valid runtime")
}

fn serial_reports() -> Vec<EpisodeReport> {
    BatchRunner::new(paper_runtime()).run_serial(&ScenarioSpec::paper_grid(SCENARIOS, SEED))
}

/// Starts an in-process worker server on an OS-assigned loopback port and
/// returns its address. `fail_after` injects a mid-stream connection drop
/// after that many reports on **every** job the host serves.
fn spawn_worker(fail_after: Option<usize>) -> SocketAddr {
    let server = WorkerServer::bind("127.0.0.1:0").expect("bind loopback");
    let addr = server.local_addr().expect("local addr");
    let runtime = Arc::new(paper_runtime());
    std::thread::spawn(move || {
        let _ = server.serve(runtime, fail_after);
    });
    addr
}

fn pool_of(hosts: &[(SocketAddr, u64)]) -> HostPool {
    HostPool::new(
        hosts
            .iter()
            .map(|&(addr, capacity)| HostSpec {
                addr: addr.to_string(),
                capacity,
            })
            .collect(),
    )
    .expect("valid pool")
}

#[test]
fn host_pool_rejects_misconfigurations_before_any_connection() {
    let ok = |addr: &str, capacity| HostSpec {
        addr: addr.to_owned(),
        capacity,
    };
    assert!(matches!(
        HostPool::new(vec![]),
        Err(TransportError::Config { .. })
    ));
    assert!(matches!(
        HostPool::new(vec![ok("a:1", 1), ok("a:1", 2)]),
        Err(TransportError::Config { .. })
    ));
    assert!(matches!(
        HostPool::new(vec![ok("a:1", 0)]),
        Err(TransportError::Config { .. })
    ));
    assert!(matches!(
        HostPool::new(vec![ok("  ", 1)]),
        Err(TransportError::Config { .. })
    ));
    // The error names the offending host.
    let err = HostPool::new(vec![ok("a:1", 1), ok("b:2", 0)]).expect_err("zero capacity");
    assert!(err.to_string().contains("b:2"), "{err}");
}

#[test]
fn host_pool_json_round_trips_and_validates() {
    let text = r#"{"v":1,"hosts":[
        {"addr":"10.0.0.1:7641","capacity":4},
        {"addr":"10.0.0.2:7641","capacity":1}
    ]}"#;
    let pool = HostPool::parse(text).expect("valid pool");
    assert_eq!(pool.hosts().len(), 2);
    assert_eq!(pool.total_capacity(), 5);
    let reparsed = HostPool::parse(&pool.to_json().render()).expect("round-trips");
    assert_eq!(reparsed, pool);

    // Default retry and chunk policies are implied and omitted from the
    // JSON form, so older pool files round-trip byte-stable.
    assert_eq!(*pool.retry(), RetryPolicy::default());
    assert_eq!(*pool.chunk(), ChunkPolicy::Auto);
    assert!(!pool.to_json().render().contains("retry"));
    assert!(!pool.to_json().render().contains("chunk"));

    // An explicit retry policy parses, validates, and round-trips.
    let with_retry = r#"{"v":1,"hosts":[{"addr":"a:1","capacity":1}],
        "retry":{"attempts":5,"base_delay_ms":40}}"#;
    let pool = HostPool::parse(with_retry).expect("valid retry");
    assert_eq!(pool.retry().attempts, 5);
    assert_eq!(pool.retry().base_delay_ms, 40);
    assert_eq!(
        HostPool::parse(&pool.to_json().render()).expect("round-trips"),
        pool
    );
    // Backoff is deterministic exponential doubling, capped.
    assert_eq!(pool.retry().backoff(0), Duration::from_millis(40));
    assert_eq!(pool.retry().backoff(2), Duration::from_millis(160));
    assert!(pool.retry().backoff(40) <= RetryPolicy::MAX_BACKOFF);

    // An explicit chunk parses, validates, and round-trips; "auto" is the
    // spelled-out default.
    let with_chunk = r#"{"v":1,"hosts":[{"addr":"a:1","capacity":1}],"chunk":2}"#;
    let pool = HostPool::parse(with_chunk).expect("valid chunk");
    assert_eq!(*pool.chunk(), ChunkPolicy::Fixed(2));
    assert_eq!(
        HostPool::parse(&pool.to_json().render()).expect("round-trips"),
        pool
    );
    let spelled_auto = r#"{"v":1,"hosts":[{"addr":"a:1","capacity":1}],"chunk":"auto"}"#;
    let pool = HostPool::parse(spelled_auto).expect("auto chunk");
    assert_eq!(*pool.chunk(), ChunkPolicy::Auto);
    assert!(!pool.to_json().render().contains("chunk"));

    // Validation happens at parse time, not connect time.
    for bad in [
        // retry misconfigurations
        r#"{"v":1,"hosts":[{"addr":"a:1","capacity":1}],"retry":{"attempts":0}}"#,
        r#"{"v":1,"hosts":[{"addr":"a:1","capacity":1}],"retry":{"bogus":1}}"#,
        r#"{"v":1,"hosts":[{"addr":"a:1","capacity":1}],"retry":7}"#,
        // chunk misconfigurations
        r#"{"v":1,"hosts":[{"addr":"a:1","capacity":1}],"chunk":0}"#,
        r#"{"v":1,"hosts":[{"addr":"a:1","capacity":1}],"chunk":-3}"#,
        r#"{"v":1,"hosts":[{"addr":"a:1","capacity":1}],"chunk":"sometimes"}"#,
        r#"{"hosts":[{"addr":"a:1","capacity":1}]}"#, // missing version
        r#"{"v":9,"hosts":[{"addr":"a:1","capacity":1}]}"#, // foreign version
        r#"{"v":1,"hosts":[]}"#,                      // empty pool
        r#"{"v":1,"hosts":[{"addr":"a:1","capacity":0}]}"#, // zero capacity
        r#"{"v":1,"hosts":[{"addr":"a:1","capacity":1},{"addr":"a:1","capacity":1}]}"#, // dup
        r#"{"v":1,"hosts":[{"capacity":1}]}"#,        // missing addr
        "not json",
    ] {
        assert!(
            matches!(HostPool::parse(bad), Err(TransportError::Config { .. })),
            "{bad} should be rejected"
        );
    }
}

#[test]
fn frames_round_trip_and_reject_garbage() {
    // Payload round-trip through an in-memory stream.
    let mut buf = Vec::new();
    write_frame(&mut buf, b"hello frame").expect("writes");
    write_frame(&mut buf, b"").expect("empty payload is legal");
    let mut cursor = Cursor::new(buf);
    assert_eq!(
        read_frame(&mut cursor).expect("reads").as_deref(),
        Some(b"hello frame".as_slice())
    );
    assert_eq!(
        read_frame(&mut cursor).expect("reads").as_deref(),
        Some(&[] as &[u8])
    );
    // Clean EOF at a frame boundary is None, not an error.
    assert_eq!(read_frame(&mut cursor).expect("clean eof"), None);

    // A length prefix above the cap is rejected before allocation.
    let mut absurd = Cursor::new(u32::MAX.to_be_bytes().to_vec());
    assert!(matches!(
        read_frame(&mut absurd),
        Err(TransportError::Frame { .. })
    ));
    // Truncation mid-payload and mid-prefix are named errors.
    let mut truncated = Cursor::new(vec![0, 0, 0, 9, b'x', b'y']);
    assert!(matches!(
        read_frame(&mut truncated),
        Err(TransportError::Frame { .. })
    ));
    let mut half_prefix = Cursor::new(vec![0, 0]);
    assert!(matches!(
        read_frame(&mut half_prefix),
        Err(TransportError::Frame { .. })
    ));
}

#[test]
fn protocol_frames_round_trip() {
    let request = JobRequest {
        scenarios: 60,
        seed: u64::MAX, // string-encoded seed path included
        plan: None,
        shard: seo_core::shard::Shard::new(15, 30),
    };
    assert_eq!(
        JobRequest::from_frame(&request.to_frame()).expect("round-trips"),
        request
    );

    // Plan-bearing jobs ship the whole plan inline and round-trip it.
    let request = JobRequest {
        plan: Some(
            SweepPlan::paper(6, 7)
                .with_optimizers(vec![OptimizerKind::Offloading, OptimizerKind::ModelGating]),
        ),
        ..request
    };
    let back = JobRequest::from_frame(&request.to_frame()).expect("round-trips");
    assert_eq!(back, request);
    assert_eq!(
        back.specs().len(),
        12,
        "plan grid overrides (scenarios, seed)"
    );
    // Plan jobs bump the frame version so a pre-plan daemon rejects them
    // loudly instead of silently running the legacy paper grid.
    let frame = String::from_utf8(request.to_frame()).expect("utf8");
    assert!(frame.starts_with(r#"{"v":2,"#), "{frame}");
    assert!(
        JobRequest::from_frame(frame.replace(r#"{"v":2,"#, r#"{"v":1,"#).as_bytes()).is_err(),
        "a v1 frame must not smuggle a plan"
    );
    let v2_missing_plan = br#"{"v":2,"type":"job","scenarios":6,"seed":7,"start":0,"end":6}"#;
    assert!(
        JobRequest::from_frame(v2_missing_plan).is_err(),
        "a v2 frame must carry its plan"
    );

    // An invalid inline plan is a frame error naming the offending field.
    let mut bad = String::from_utf8(request.to_frame()).expect("utf8");
    bad = bad.replace("\"gating_levels\":[0.5]", "\"gating_levels\":[7.5]");
    let err = JobRequest::from_frame(bad.as_bytes()).expect_err("invalid plan rejected");
    assert!(
        err.to_string().contains("axes.gating_levels"),
        "field not named: {err}"
    );
    assert!(JobRequest::from_frame(b"{}").is_err());
    assert!(
        JobRequest::from_frame(&done_frame(3)).is_err(),
        "wrong type"
    );

    match parse_worker_frame(&done_frame(7)).expect("parses") {
        WorkerMsg::Done { count } => assert_eq!(count, 7),
        other => panic!("expected done, got {other:?}"),
    }
    match parse_worker_frame(&error_frame("boom")).expect("parses") {
        WorkerMsg::Error { message } => assert_eq!(message, "boom"),
        other => panic!("expected error, got {other:?}"),
    }
    // A report frame is byte-for-byte the NDJSON report line.
    let report = paper_runtime().run_episode(&ScenarioSpec::new(0, 1).world(), 1);
    let payload = report_line(3, &report).into_bytes();
    match parse_worker_frame(&payload).expect("parses") {
        WorkerMsg::Report {
            index,
            report: back,
        } => {
            assert_eq!(index, 3);
            assert_eq!(back, report);
        }
        other => panic!("expected report, got {other:?}"),
    }
    assert!(parse_worker_frame(b"\xff\xfe").is_err(), "not UTF-8");
    assert!(
        parse_worker_frame(br#"{"v":1,"type":"mystery"}"#).is_err(),
        "unknown type"
    );
}

/// The tentpole property: 1/2/3 loopback hosts with uneven capacities all
/// reproduce the serial sweep bit-for-bit, field-wise and on the wire.
#[test]
fn multi_host_merge_is_bit_identical_to_serial() {
    let serial = serial_reports();
    for capacities in [vec![1u64], vec![3, 1], vec![1, 2, 1]] {
        let hosts: Vec<(SocketAddr, u64)> = capacities
            .iter()
            .map(|&c| (spawn_worker(None), c))
            .collect();
        let coordinator = RemoteCoordinator::new(pool_of(&hosts));
        let (merged, stats) = coordinator.run(SCENARIOS, SEED).expect("runs");
        assert!(stats.hosts_lost.is_empty(), "no losses expected");
        assert_eq!(stats.reissues, 0, "no lease should need re-issue");
        assert_eq!(
            merged,
            serial,
            "{} host(s) with capacities {capacities:?} must reproduce the serial sweep",
            capacities.len()
        );
        for (i, (m, s)) in merged.iter().zip(&serial).enumerate() {
            assert_eq!(report_line(i, m), report_line(i, s), "wire line {i}");
        }
    }
}

/// The chunk-size property: every chunk policy — one spec per lease, a
/// mid-size chunk, auto, and the whole grid in one lease — over 1/2/3
/// hosts reproduces the serial sweep bit-for-bit, and the resolved chunk
/// and lease count land in the stats. This is the associative-merge
/// argument made executable: work splitting is arbitrary, output is not.
#[test]
fn every_chunk_size_merges_bit_identical_to_serial() {
    let serial = serial_reports();
    for policy in [
        ChunkPolicy::Fixed(1),
        ChunkPolicy::Fixed(3),
        ChunkPolicy::Auto,
        ChunkPolicy::Fixed(SCENARIOS),
    ] {
        for n_hosts in 1..=3usize {
            let hosts: Vec<(SocketAddr, u64)> =
                (0..n_hosts).map(|_| (spawn_worker(None), 1)).collect();
            let pool = pool_of(&hosts).with_chunk(policy);
            let (merged, stats) = RemoteCoordinator::new(pool)
                .run(SCENARIOS, SEED)
                .expect("runs");
            let chunk = policy.resolve(SCENARIOS, n_hosts);
            assert_eq!(stats.chunk, chunk, "{policy:?} over {n_hosts} host(s)");
            assert_eq!(stats.leases, SCENARIOS.div_ceil(chunk));
            assert!(stats.jobs >= stats.leases, "every lease is dispatched");
            assert!(stats.hosts_lost.is_empty());
            assert_eq!(
                merged, serial,
                "{policy:?} over {n_hosts} host(s) must reproduce the serial sweep"
            );
            for (i, (m, s)) in merged.iter().zip(&serial).enumerate() {
                assert_eq!(report_line(i, m), report_line(i, s), "wire line {i}");
            }
            // Lease completions account for the whole queue and stay
            // attributed to real pool members.
            let pulled: usize = stats.leases_by_host.iter().map(|&(_, n)| n).sum();
            assert_eq!(pulled, stats.leases, "every lease completed exactly once");
        }
    }
}

#[test]
fn streaming_sink_sees_reports_strictly_in_spec_order() {
    let serial = serial_reports();
    let hosts = [(spawn_worker(None), 1), (spawn_worker(None), 1)];
    let coordinator = RemoteCoordinator::new(pool_of(&hosts));
    let mut seen = Vec::new();
    coordinator
        .run_streaming(SCENARIOS, SEED, |i, report| seen.push((i, report)))
        .expect("streams");
    assert_eq!(seen.len(), serial.len());
    for (k, (i, report)) in seen.iter().enumerate() {
        assert_eq!(*i, k, "sink called strictly in spec order");
        assert_eq!(*report, serial[k]);
    }
}

/// Injected mid-stream host kill: the victim drops its connection after one
/// report on every lease it pulls. A 2-attempt retry budget on 3-spec
/// leases delivers two reports and strands one, so the remnant must be
/// re-queued, stolen by the survivor, and the merge stay bit-identical.
#[test]
fn mid_stream_host_kill_reissues_to_survivors() {
    let serial = serial_reports();
    let healthy = spawn_worker(None);
    let doomed = spawn_worker(Some(1));
    let pool = pool_of(&[(healthy, 1), (doomed, 1)])
        .with_chunk(ChunkPolicy::Fixed(3))
        .with_retry(RetryPolicy {
            attempts: 2,
            base_delay_ms: 10,
        });
    let coordinator = RemoteCoordinator::new(pool);
    let (merged, stats) = coordinator.run(SCENARIOS, SEED).expect("survives the kill");
    assert_eq!(merged, serial, "re-issued merge must stay bit-identical");
    assert_eq!(stats.hosts_lost.len(), 1, "exactly one host lost");
    assert_eq!(stats.hosts_lost[0].addr, doomed.to_string());
    assert!(stats.reissues >= 1, "the remnant needs a re-issue");
    assert!(
        stats.steals >= 1,
        "the survivor steals the re-queued remnant"
    );
    assert!(
        stats.hosts_lost[0].reassigned > 0,
        "the kill must strand specs for re-issue"
    );
}

/// A host that is down from the start (nothing listening) is just another
/// loss: the lease it pulled is re-queued and stolen by the survivor.
#[test]
fn dead_on_arrival_host_is_stolen_around() {
    let serial = serial_reports();
    // Grab a loopback port and release it so connects are refused.
    let dead_addr = {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        listener.local_addr().expect("addr")
    };
    let healthy = spawn_worker(None);
    let coordinator = RemoteCoordinator::new(pool_of(&[(dead_addr, 2), (healthy, 1)]))
        .with_timeout(Duration::from_secs(5));
    let (merged, stats) = coordinator.run(SCENARIOS, SEED).expect("survives");
    assert_eq!(merged, serial);
    assert_eq!(stats.hosts_lost.len(), 1);
    assert_eq!(stats.hosts_lost[0].addr, dead_addr.to_string());
}

/// A host that accepts the connection and then goes silent is declared lost
/// by the read timeout; its lease is re-queued and served by the survivor.
#[test]
fn stalled_host_times_out_and_is_stolen_around() {
    let serial = serial_reports();
    // A "tar pit": accepts connections, reads nothing, answers nothing, and
    // keeps the sockets open so the coordinator sees silence, not EOF.
    let stall_addr = {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        std::thread::spawn(move || {
            let mut held = Vec::new();
            while let Ok((stream, _)) = listener.accept() {
                held.push(stream);
            }
        });
        addr
    };
    let healthy = spawn_worker(None);
    let coordinator = RemoteCoordinator::new(pool_of(&[(stall_addr, 1), (healthy, 1)]))
        .with_timeout(Duration::from_millis(400));
    let (merged, stats) = coordinator
        .run(SCENARIOS, SEED)
        .expect("survives the stall");
    assert_eq!(merged, serial);
    assert_eq!(stats.hosts_lost.len(), 1);
    assert_eq!(stats.hosts_lost[0].addr, stall_addr.to_string());
}

/// When every host dies with work outstanding there is nobody left to pull
/// the queue: the run must fail loudly, naming the stranded spec count.
#[test]
fn losing_every_host_fails_with_no_survivors() {
    let coordinator = RemoteCoordinator::new(pool_of(&[
        (spawn_worker(Some(0)), 1),
        (spawn_worker(Some(1)), 1),
    ]));
    match coordinator.run(SCENARIOS, SEED) {
        Err(TransportError::NoSurvivors { remaining, .. }) => {
            assert!(remaining > 0, "stranded specs must be counted");
        }
        other => panic!("expected NoSurvivors, got {other:?}"),
    }
}

#[test]
fn empty_grid_completes_without_touching_the_network() {
    // An unreachable pool is fine when there is nothing to run.
    let pool = HostPool::new(vec![HostSpec {
        addr: "203.0.113.1:9".to_owned(), // TEST-NET, never connected to
        capacity: 1,
    }])
    .expect("valid pool");
    let (merged, stats) = RemoteCoordinator::new(pool)
        .run(0, SEED)
        .expect("empty run");
    assert!(merged.is_empty());
    assert_eq!(stats.jobs, 0);
    assert_eq!(stats.leases, 0);
}

/// Plan-bearing jobs: a multi-cell plan shipped inline to the daemons
/// merges bit-identically to the plan's in-process serial run — including
/// across shard boundaries that cross runtime-cell boundaries.
#[test]
fn plan_dispatch_is_bit_identical_to_plan_serial() {
    let plan = SweepPlan::paper(3, SEED)
        .with_optimizers(vec![OptimizerKind::Offloading, OptimizerKind::ModelGating]);
    let serial = plan.run_serial().expect("plan serial runs");
    assert_eq!(serial.len(), 6);
    for capacities in [vec![1u64], vec![2, 1]] {
        let hosts: Vec<(SocketAddr, u64)> = capacities
            .iter()
            .map(|&c| (spawn_worker(None), c))
            .collect();
        let coordinator = RemoteCoordinator::new(pool_of(&hosts));
        let (merged, stats) = coordinator.run_plan(&plan).expect("plan runs");
        assert!(stats.hosts_lost.is_empty());
        assert_eq!(
            merged, serial,
            "{capacities:?}-capacity fleet must reproduce the plan's serial run"
        );
        for (i, (m, s)) in merged.iter().zip(&serial).enumerate() {
            assert_eq!(report_line(i, m), report_line(i, s), "wire line {i}");
        }
    }
}

/// Lease re-issue works for plan jobs exactly as for legacy jobs: a host
/// injected to die mid-stream burns its retry budget one report at a
/// time, strands its lease tail, and the survivor steals the re-queued
/// remnant — the merge still reproduces the plan's serial output. (The
/// lease must be bigger than the retry budget: a lease small enough to
/// finish within the budget would simply complete, which is the retry
/// layer's whole point.)
#[test]
fn plan_dispatch_survives_a_mid_stream_kill() {
    let plan = SweepPlan::paper(SCENARIOS, SEED);
    let serial = plan.run_serial().expect("plan serial runs");
    let dying = spawn_worker(Some(1));
    let healthy = spawn_worker(None);
    let pool = pool_of(&[(dying, 1), (healthy, 1)])
        .with_chunk(ChunkPolicy::Fixed(3))
        .with_retry(RetryPolicy {
            attempts: 2,
            base_delay_ms: 10,
        });
    let coordinator = RemoteCoordinator::new(pool);
    let (merged, stats) = coordinator.run_plan(&plan).expect("survives the kill");
    assert_eq!(merged, serial);
    assert_eq!(stats.hosts_lost.len(), 1);
    assert!(stats.retries > 0, "mid-stream EOFs are transient: retried");
    assert!(stats.reissues >= 1, "the kill forces a lease re-issue");
}
