//! Workspace properties of the async episode engine: for in-flight windows
//! {1, 4, 64} × {clean, bursty} channels × all four execution engines, the
//! merged NDJSON stream is byte-identical to the serial **blocking** run.
//! The invariant itself lives in
//! [`seo_integration::assert_all_engines_bit_identical`] so other suites
//! (chaos, falsify) can import the identical statement.

use seo_core::prelude::*;
use seo_integration::assert_all_engines_bit_identical;

/// The property grid: two obstacle counts over one channel kind, small
/// enough that the full four-engine matrix stays cheap, rich enough that
/// episodes genuinely offload (the paper preset's offloading optimizer).
fn grid(channel: ChannelKind) -> SweepPlan {
    SweepPlan::paper(2, 2023)
        .with_obstacles(vec![0, 2])
        .with_channels(vec![channel])
}

/// Every window is a scheduling choice, never a semantic one. Window 1
/// pins the degenerate reactor to the blocking stream; window 64 exceeds
/// the grid, so the whole sweep is in flight at once.
#[test]
fn async_windows_match_blocking_serial_on_the_clean_channel() {
    for in_flight in [1usize, 4, 64] {
        let plan = grid(ChannelKind::Clean).with_offload(OffloadExec::Async { in_flight });
        assert_all_engines_bit_identical(&plan);
    }
}

/// The motivating case: the bursty Gilbert–Elliott channel stretches
/// offload waits in correlated bursts — exactly when overlap pays — and
/// the completion order must still be a pure function of the seed.
#[test]
fn async_windows_match_blocking_serial_on_the_bursty_channel() {
    for in_flight in [1usize, 4, 64] {
        let plan = grid(ChannelKind::Bursty).with_offload(OffloadExec::Async { in_flight });
        assert_all_engines_bit_identical(&plan);
    }
}

/// The helper also accepts a blocking plan: all four engines against the
/// plain serial loop, the pre-reactor statement of the invariant.
#[test]
fn blocking_plans_still_satisfy_the_engine_invariant() {
    assert_all_engines_bit_identical(&grid(ChannelKind::Bursty));
}
