//! End-to-end integration: the full SEO stack (simulator + controller +
//! shield + deadline table + scheduler + optimizers + accounting) wired
//! exactly as the experiment harness uses it.

use seo_core::prelude::*;
use seo_core::runtime::RuntimeLoop;
use seo_sim::episode::EpisodeStatus;
use seo_sim::scenario::ScenarioConfig;

fn runtime(optimizer: OptimizerKind, mode: ControlMode) -> RuntimeLoop {
    let config = SeoConfig::paper_defaults().with_control_mode(mode);
    let models = ModelSet::paper_setup(config.tau).expect("paper setup is valid");
    RuntimeLoop::new(config, models, optimizer).expect("runtime builds")
}

#[test]
fn full_stack_completes_paper_scenarios_for_all_optimizers() {
    for optimizer in OptimizerKind::ALL {
        let rt = runtime(optimizer, ControlMode::Filtered);
        let report = rt.run_episode(&ScenarioConfig::new(2).with_seed(0).generate(), 0);
        assert_eq!(
            report.status,
            EpisodeStatus::Completed,
            "{optimizer} should complete the 2-obstacle route"
        );
        assert!(report.steps > 100, "{optimizer}: trivially short episode");
        assert_eq!(
            report.models.len(),
            2,
            "{optimizer}: two detectors reported"
        );
    }
}

#[test]
fn experiment_harness_aggregates_over_runs() {
    let result = ExperimentConfig::paper_defaults()
        .with_optimizer(OptimizerKind::Offloading)
        .with_runs(4)
        .run()
        .expect("harness collects runs");
    assert_eq!(result.reports.len(), 4);
    assert_eq!(result.summary.runs, 4);
    assert!(result.summary.histogram.total() > 0);
    // Combined gain must sit between the per-model extremes.
    let g = result.summary.combined_gain;
    let lo = result
        .summary
        .model_gains
        .iter()
        .cloned()
        .fold(f64::INFINITY, f64::min);
    let hi = result
        .summary
        .model_gains
        .iter()
        .cloned()
        .fold(f64::NEG_INFINITY, f64::max);
    assert!(
        g >= lo - 1e-9 && g <= hi + 1e-9,
        "combined {g} outside [{lo}, {hi}]"
    );
}

#[test]
fn optimized_schedule_never_exceeds_baseline_by_much() {
    // Offloading can exceed the baseline only by radio energy on fallback
    // slots; gating never exceeds it. Check both across optimizers.
    for optimizer in [OptimizerKind::ModelGating, OptimizerKind::SensorGating] {
        let rt = runtime(optimizer, ControlMode::Filtered);
        let report = rt.run_episode(&ScenarioConfig::new(4).with_seed(3).generate(), 3);
        for m in &report.models {
            let gain = m.gain().expect("baseline nonzero");
            assert!(
                gain >= -1e-9,
                "{optimizer}/{}: negative gain {gain}",
                m.name
            );
        }
    }
}

#[test]
fn detectors_with_different_rates_account_different_baselines() {
    let rt = runtime(OptimizerKind::LocalBaseline, ControlMode::Filtered);
    let report = rt.run_episode(&ScenarioConfig::new(0).with_seed(1).generate(), 1);
    let base1 = report.models[0].baseline.total().as_joules();
    let base2 = report.models[1].baseline.total().as_joules();
    // The p = tau detector runs twice as often as the p = 2 tau detector.
    let ratio = base1 / base2;
    assert!(
        (ratio - 2.0).abs() < 0.05,
        "baseline energy ratio should be ~2, got {ratio}"
    );
}

#[test]
fn runtime_is_reusable_across_episodes() {
    let rt = runtime(OptimizerKind::Offloading, ControlMode::Filtered);
    let mut statuses = Vec::new();
    for seed in 0..3u64 {
        let world = ScenarioConfig::new(2).with_seed(seed).generate();
        statuses.push(rt.run_episode(&world, seed).status);
    }
    assert!(statuses.iter().filter(|s| s.is_success()).count() >= 2);
}

#[test]
fn strict_eq7_fallback_lowers_gains_but_strengthens_rate_ordering() {
    use seo_core::config::OffloadFallback;
    use seo_core::runtime::RuntimeLoop;

    let world = ScenarioConfig::new(0).with_seed(4).generate();
    let run = |fallback: OffloadFallback| {
        let config = SeoConfig::paper_defaults().with_offload_fallback(fallback);
        let models = ModelSet::paper_setup(config.tau).expect("valid");
        RuntimeLoop::new(config, models, OptimizerKind::Offloading)
            .expect("runtime builds")
            .run_episode(&world, 4)
    };
    let fig3 = run(OffloadFallback::LocalOnTimeout);
    let strict = run(OffloadFallback::AlwaysLocal);
    // The strict eq. (7) reading always pays the deadline-slot inference,
    // so its gains are lower...
    assert!(
        strict.combined_gain().expect("ok") < fig3.combined_gain().expect("ok"),
        "strict fallback should reduce gains"
    );
    // ...but it makes the p=tau > p=2tau ordering structural even on the
    // free road (3 of 4 slots saved vs 1 of 2).
    let g1 = strict.models[0].gain().expect("ok");
    let g2 = strict.models[1].gain().expect("ok");
    assert!(
        g1 > g2,
        "strict fallback: p=tau ({g1:.3}) must beat p=2tau ({g2:.3})"
    );
}

#[test]
fn offloading_outperforms_gating_which_outperforms_baseline() {
    let world = ScenarioConfig::new(0).with_seed(2).generate();
    let gains: Vec<f64> = [
        OptimizerKind::Offloading,
        OptimizerKind::ModelGating,
        OptimizerKind::LocalBaseline,
    ]
    .iter()
    .map(|&opt| {
        runtime(opt, ControlMode::Filtered)
            .run_episode(&world, 2)
            .combined_gain()
            .expect("nonzero baseline")
    })
    .collect();
    assert!(
        gains[0] > gains[1],
        "offloading {} <= gating {}",
        gains[0],
        gains[1]
    );
    assert!(
        gains[1] > gains[2],
        "gating {} <= baseline {}",
        gains[1],
        gains[2]
    );
    assert!(
        gains[2].abs() < 1e-9,
        "baseline gain must be zero: {}",
        gains[2]
    );
}
